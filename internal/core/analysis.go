package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"image"
	"image/jpeg"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"picoprobe/internal/detect"
	"picoprobe/internal/emd"
	"picoprobe/internal/imaging"
	"picoprobe/internal/metadata"
	"picoprobe/internal/synth"
	"picoprobe/internal/tensor"
	"picoprobe/internal/video"
)

// chunkScratch recycles the fp64 chunk buffers the streaming reductions
// and the spatiotemporal pipeline read EMD chunks into; no analysis stage
// ever materializes more than one chunk of a dataset at a time.
var chunkScratch = sync.Pool{New: func() any { return new(chunkBuf) }}

type chunkBuf struct{ data []float64 }

func (b *chunkBuf) grow(n int) []float64 {
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	return b.data[:n]
}

// AnalysisOutput is what the fused analysis+metadata compute function
// produces: the experiment record (with product references attached) plus
// the artifact files written to the output directory.
type AnalysisOutput struct {
	Experiment *metadata.Experiment
	// OutDir is where artifacts were written; product paths are relative
	// to it.
	OutDir string
	// Composition maps detected elements to relative spectral weight
	// (hyperspectral only).
	Composition map[string]float64
	// Detections holds per-frame detection counts (spatiotemporal only).
	Detections []int
	// CastElements counts fp64→uint8 conversions (spatiotemporal only).
	CastElements int
}

// AnalyzeHyperspectral is the real body of the paper's fused hyperspectral
// compute function: in a single pass over the EMD file it (i) computes the
// intensity image by summing over the spectral axis (Fig 2.A), (ii)
// computes the aggregate spectrum by summing over both pixel axes (Fig
// 2.B), (iii) assigns spectral peaks to elements, and (iv) extracts the
// experiment metadata HyperSpy-style (Fig 2.C) — fusing metadata
// extraction with image processing so the file is read once.
func AnalyzeHyperspectral(emdPath, outDir string) (*AnalysisOutput, error) {
	f, err := emd.Open(emdPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	exp, err := metadata.Extract(f)
	if err != nil {
		return nil, err
	}
	ds, err := f.Dataset("data/hyperspectral/data")
	if err != nil {
		return nil, err
	}
	intensity, spectrum, err := streamHyperspectral(ds)
	if err != nil {
		return nil, err
	}
	maxKeV := 20.0
	if grp, ok := f.Root().Lookup("data/hyperspectral"); ok {
		if v, ok := grp.AttrFloat("max_energy_kev"); ok {
			maxKeV = v
		}
	}

	recDir := filepath.Join(outDir, exp.ID)
	if err := os.MkdirAll(recDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Fig 2.A: intensity image = sum along the spectroscopy dimension.
	heat, err := imaging.Heatmap(intensity, imaging.Viridis)
	if err != nil {
		return nil, err
	}
	if err := imaging.SavePNG(filepath.Join(recDir, "intensity.png"), heat); err != nil {
		return nil, err
	}

	// Fig 2.B: aggregate spectrum = sum over both pixel dimensions.
	channels := len(spectrum)
	xs := make([]float64, channels)
	for c := range xs {
		xs[c] = (float64(c) + 0.5) * maxKeV / float64(channels)
	}
	composition, markers := assignPeaks(xs, spectrum)
	plot, err := imaging.LinePlot(imaging.PlotConfig{
		Title:   "AGGREGATE EDS SPECTRUM",
		XLabel:  "ENERGY (KEV)",
		YLabel:  "COUNTS",
		Markers: markers,
	}, imaging.Series{Label: "SUM", X: xs, Y: spectrum, Color: imaging.Blue})
	if err != nil {
		return nil, err
	}
	if err := imaging.SavePNG(filepath.Join(recDir, "spectrum.png"), plot); err != nil {
		return nil, err
	}
	if err := writeSpectrumCSV(filepath.Join(recDir, "spectrum.csv"), xs, spectrum); err != nil {
		return nil, err
	}

	exp.Products = []metadata.Product{
		{Name: "Intensity map", Path: exp.ID + "/intensity.png", Kind: "intensity_png"},
		{Name: "Aggregate spectrum", Path: exp.ID + "/spectrum.png", Kind: "spectrum_png"},
		{Name: "Spectrum CSV", Path: exp.ID + "/spectrum.csv", Kind: "spectrum_csv"},
	}
	if st, err := os.Stat(emdPath); err == nil {
		exp.Files = []metadata.FileRef{{Name: filepath.Base(emdPath), Bytes: st.Size()}}
	}
	// Fold the detected composition into the record's subjects so the
	// portal can find experiments by element.
	for _, el := range sortedCompositionKeys(composition) {
		exp.Subjects = appendUnique(exp.Subjects, el)
	}
	return &AnalysisOutput{Experiment: exp, OutDir: outDir, Composition: composition}, nil
}

// lineTable caches the synthetic element line-energy catalog, which is
// static; rebuilding it for every analyzed file showed up in the
// round-trip allocation profile.
var lineTable = sync.OnceValue(synth.LineEnergies)

// streamHyperspectral computes the paper's two Fig 2 reductions — the
// intensity image (sum over the spectral axis) and the aggregate spectrum
// (sum over both pixel axes) — in a single fused pass over the dataset's
// stored chunks, parallelized across chunks. Only one chunk per worker is
// resident at any time (pooled buffers, no full-cube materialization).
// Per-chunk partial spectra are merged in chunk order so the accumulation
// order is deterministic.
func streamHyperspectral(ds *emd.Dataset) (*tensor.Dense, []float64, error) {
	shape := ds.Shape()
	if len(shape) != 3 {
		return nil, nil, fmt.Errorf("core: hyperspectral cube has rank %d", len(shape))
	}
	H, W, C := shape[0], shape[1], shape[2]
	intensity := tensor.New(H, W)
	intens := intensity.Data()
	chunks := ds.Chunks()
	covered := 0
	for _, c := range chunks {
		covered += c.Frames()
	}
	if covered != H {
		return nil, nil, fmt.Errorf("core: hyperspectral cube covers %d of %d rows", covered, H)
	}
	partial := make([][]float64, len(chunks))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var next atomic.Int64
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := chunkScratch.Get().(*chunkBuf)
			defer chunkScratch.Put(buf)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				c := chunks[i]
				data := buf.grow(c.Frames() * W * C)
				if err := ds.ReadFramesInto(data, c.Lo, c.Hi); err != nil {
					errs[i] = err
					continue
				}
				spec := make([]float64, C)
				partial[i] = spec
				out := intens[c.Lo*W : c.Hi*W]
				for r := range out {
					row := data[r*C : (r+1)*C]
					s := 0.0
					for ci, v := range row {
						s += v
						spec[ci] += v
					}
					out[r] = s
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	spectrum := make([]float64, C)
	for _, spec := range partial {
		for ci, v := range spec {
			spectrum[ci] += v
		}
	}
	return intensity, spectrum, nil
}

// assignPeaks finds local maxima in the spectrum well above the continuum
// and assigns them to the nearest catalogued element line. It returns the
// per-element relative weights and plot markers for identified lines.
func assignPeaks(xs, ys []float64) (map[string]float64, []imaging.Marker) {
	if len(ys) < 3 {
		return nil, nil
	}
	// Continuum estimate: median of the spectrum.
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	continuum := sorted[len(sorted)/2]
	threshold := continuum*1.5 + 1e-12

	lines := lineTable()
	composition := map[string]float64{}
	var markers []imaging.Marker
	for i := 1; i < len(ys)-1; i++ {
		if ys[i] <= threshold || ys[i] < ys[i-1] || ys[i] < ys[i+1] {
			continue
		}
		// Nearest catalogued line within half a detector sigma worth of
		// tolerance.
		bestD := math.Inf(1)
		bestEl := ""
		for _, l := range lines {
			if d := math.Abs(l.KeV - xs[i]); d < bestD {
				bestD = d
				bestEl = l.Element
			}
		}
		if bestEl == "" || bestD > 0.15 {
			continue
		}
		weight := ys[i] - continuum
		if weight > composition[bestEl] {
			composition[bestEl] = weight
		}
		markers = append(markers, imaging.Marker{X: xs[i], Label: bestEl, Color: imaging.Red})
	}
	// Normalize weights to fractions.
	total := 0.0
	for _, w := range composition {
		total += w
	}
	if total > 0 {
		for el := range composition {
			composition[el] /= total
		}
	}
	return composition, markers
}

// annotateScratch recycles the spatiotemporal pipeline's per-frame cast
// and render buffers across frames and across concurrent encode workers.
var annotateScratch = sync.Pool{New: func() any { return new(annotateBufs) }}

type annotateBufs struct {
	pix  []uint8
	gray *image.Gray
	rgba *image.RGBA
}

// AnalyzeSpatiotemporal is the real body of the paper's spatiotemporal
// compute function: it streams the EMD series chunk by chunk, runs the
// calibrated nanoYOLO detector on every frame while accumulating the
// global intensity range, then converts the series to video (the
// fp64→uint8 cast the paper identifies as the bottleneck) and writes an
// annotated video with predicted bounding boxes and confidences (Fig 3),
// plus the extracted experiment metadata — fused into one function. The
// video pass is a bounded worker pipeline (cast → render → JPEG-encode,
// order-preserving emit) over one resident chunk at a time, with each
// frame cast exactly once and flushed to both containers incrementally.
func AnalyzeSpatiotemporal(emdPath, outDir string, params detect.Params) (*AnalysisOutput, error) {
	f, err := emd.Open(emdPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	exp, err := metadata.Extract(f)
	if err != nil {
		return nil, err
	}
	ds, err := f.Dataset("data/spatiotemporal/data")
	if err != nil {
		return nil, err
	}
	shape := ds.Shape()
	if len(shape) != 3 {
		return nil, fmt.Errorf("core: spatiotemporal series has rank %d", len(shape))
	}
	T, H, W := shape[0], shape[1], shape[2]
	recDir := filepath.Join(outDir, exp.ID)
	if err := os.MkdirAll(recDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	chunks := ds.Chunks()
	covered := 0
	for _, c := range chunks {
		covered += c.Frames()
	}
	if covered != T {
		return nil, fmt.Errorf("core: spatiotemporal series covers %d of %d frames", covered, T)
	}

	// Pass 1: per-frame detection (parallel inside DetectSeries) fused
	// with the global intensity-range scan, one chunk resident at a time.
	perFrame := make([][]detect.Detection, T)
	lo, hi := math.Inf(1), math.Inf(-1)
	buf := chunkScratch.Get().(*chunkBuf)
	for _, c := range chunks {
		data := buf.grow(c.Frames() * H * W)
		if err := ds.ReadFramesInto(data, c.Lo, c.Hi); err != nil {
			chunkScratch.Put(buf)
			return nil, err
		}
		chunkT := tensor.FromData(data, c.Frames(), H, W)
		cLo, cHi := chunkT.MinMax()
		lo, hi = math.Min(lo, cLo), math.Max(hi, cHi)
		dets, err := detect.DetectSeries(chunkT, params)
		if err != nil {
			chunkScratch.Put(buf)
			return nil, err
		}
		copy(perFrame[c.Lo:c.Hi], dets)
	}

	// Pass 2: EMD → video conversion and annotation. Each frame is cast
	// once; the raw grayscale JPEG and the annotated JPEG are encoded
	// back-to-back into one buffer by the pipeline workers and streamed to
	// their containers in frame order.
	rawPath := filepath.Join(recDir, "series.avi")
	rawFile, err := os.Create(rawPath)
	if err != nil {
		chunkScratch.Put(buf)
		return nil, fmt.Errorf("core: %w", err)
	}
	annPath := filepath.Join(recDir, "annotated.avi")
	annFile, err := os.Create(annPath)
	if err != nil {
		chunkScratch.Put(buf)
		rawFile.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	closeFiles := func() {
		rawFile.Close()
		annFile.Close()
	}
	vwRaw, err := video.NewWriter(rawFile, W, H, 25, 90)
	if err != nil {
		chunkScratch.Put(buf)
		closeFiles()
		return nil, err
	}
	vwAnn, err := video.NewWriter(annFile, W, H, 25, 90)
	if err != nil {
		chunkScratch.Put(buf)
		closeFiles()
		return nil, err
	}
	opts := &jpeg.Options{Quality: 90}
	castElements := 0
	counts := make([]int, T)
	for _, c := range chunks {
		data := buf.grow(c.Frames() * H * W)
		if err := ds.ReadFramesInto(data, c.Lo, c.Hi); err != nil {
			chunkScratch.Put(buf)
			closeFiles()
			return nil, err
		}
		chunkT := tensor.FromData(data, c.Frames(), H, W)
		splits := make([]int, c.Frames())
		render := func(i int, out *bytes.Buffer) error {
			t := c.Lo + i
			sc := annotateScratch.Get().(*annotateBufs)
			defer annotateScratch.Put(sc)
			sc.pix = chunkT.Frame(i).ToUint8Into(sc.pix, lo, hi) // the fp64→uint8 cast
			gray, err := imaging.GrayFrameInto(sc.gray, sc.pix, W, H)
			if err != nil {
				return err
			}
			sc.gray = gray
			if err := jpeg.Encode(out, gray, opts); err != nil {
				return err
			}
			splits[i] = out.Len()
			rgba := imaging.ToRGBAInto(sc.rgba, gray)
			sc.rgba = rgba
			for _, d := range perFrame[t] {
				imaging.DrawLabeledBox(rgba, d.Box, fmt.Sprintf("AU %.2f", d.Score), imaging.Orange)
			}
			return jpeg.Encode(out, rgba, opts)
		}
		emit := func(i int, data []byte) error {
			t := c.Lo + i
			if err := vwRaw.AddEncodedFrame(data[:splits[i]]); err != nil {
				return err
			}
			if err := vwAnn.AddEncodedFrame(data[splits[i]:]); err != nil {
				return err
			}
			castElements += H * W
			counts[t] = len(perFrame[t])
			return nil
		}
		if err := video.EncodeFrames(c.Frames(), render, emit); err != nil {
			chunkScratch.Put(buf)
			closeFiles()
			return nil, err
		}
	}
	chunkScratch.Put(buf)
	if err := vwRaw.Close(); err != nil {
		closeFiles()
		return nil, err
	}
	if err := vwAnn.Close(); err != nil {
		closeFiles()
		return nil, err
	}
	if err := rawFile.Close(); err != nil {
		annFile.Close()
		return nil, err
	}
	if err := annFile.Close(); err != nil {
		return nil, err
	}
	if err := writeCountsCSV(filepath.Join(recDir, "counts.csv"), counts); err != nil {
		return nil, err
	}

	exp.Products = []metadata.Product{
		{Name: "Converted video", Path: exp.ID + "/series.avi", Kind: "video_avi"},
		{Name: "Annotated tracking video", Path: exp.ID + "/annotated.avi", Kind: "annotated_avi"},
		{Name: "Particle counts", Path: exp.ID + "/counts.csv", Kind: "counts_csv"},
	}
	if st, err := os.Stat(emdPath); err == nil {
		exp.Files = []metadata.FileRef{{Name: filepath.Base(emdPath), Bytes: st.Size()}}
	}
	return &AnalysisOutput{
		Experiment:   exp,
		OutDir:       outDir,
		Detections:   counts,
		CastElements: castElements,
	}, nil
}

// writeSpectrumCSV emits the same bytes encoding/csv would (the values
// never need quoting), but append-formats each row into one reused buffer
// instead of allocating per-field strings and per-row slices.
func writeSpectrumCSV(path string, xs, ys []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(f)
	w.WriteString("energy_kev,counts\n")
	var row []byte
	for i := range xs {
		row = strconv.AppendFloat(row[:0], xs[i], 'g', 8, 64)
		row = append(row, ',')
		row = strconv.AppendFloat(row, ys[i], 'g', 8, 64)
		row = append(row, '\n')
		w.Write(row)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: %w", err)
	}
	return f.Close()
}

func writeCountsCSV(path string, counts []int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(f)
	w.WriteString("frame,particles\n")
	var row []byte
	for i, c := range counts {
		row = strconv.AppendInt(row[:0], int64(i), 10)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(c), 10)
		row = append(row, '\n')
		w.Write(row)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: %w", err)
	}
	return f.Close()
}

// SearchEntry converts the experiment record into its search-index form:
// free text from titles/subjects, filterable fields, numeric ranges and
// the full record as payload.
func SearchEntry(exp *metadata.Experiment) (jsonEntry []byte, err error) {
	payload, err := json.Marshal(exp)
	if err != nil {
		return nil, fmt.Errorf("core: marshal experiment: %w", err)
	}
	entry := map[string]any{
		"id":   exp.ID,
		"text": exp.Title + " " + exp.Acquisition.SampleName + " " + joinStrings(exp.Subjects),
		"fields": map[string]string{
			"kind":    exp.Acquisition.Kind,
			"sample":  exp.Acquisition.SampleName,
			"signal":  exp.Acquisition.Signal,
			"title":   exp.Title,
			"dtype":   exp.Acquisition.DTypeName,
			"creator": joinStrings(exp.Creators),
		},
		"numbers": map[string]float64{
			"beam_energy_kev": exp.Microscope.BeamEnergyKeV,
			"magnification_x": float64(exp.Microscope.MagnificationX),
		},
		"date":       exp.Acquisition.Collected,
		"visible_to": exp.VisibleTo,
		"payload":    json.RawMessage(payload),
	}
	return json.Marshal(entry)
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}

func appendUnique(ss []string, s string) []string {
	for _, v := range ss {
		if v == s {
			return ss
		}
	}
	return append(ss, s)
}

func sortedCompositionKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
