package netprobe

import "time"

// Tuner derives transfer framing from measured path quality — the
// bandwidth-delay-product rule of DESIGN.md §10. It implements the
// transfer engine's RouteTuner seam, which re-reads it between chunks, so
// a transfer crossing a bandwidth ramp widens or narrows its stream
// window mid-task.
//
// Streams: enough per-stream-capped flows to cover the measured goodput
// (ceil(goodput / streamCap)), clamped to [1, MaxStreams] — a thin
// degraded path gets one stream, a fat recovered path fans out until the
// bottleneck is saturated.
//
// Chunk size: BDPMultiple × the measured BDP (goodput × RTT / 8 bytes),
// quantized and clamped to [MinChunkBytes, MaxChunkBytes] — small chunks
// on a thin path (cheap resume, fast re-evaluation), large chunks on a
// fat one (less per-chunk overhead).
type Tuner struct {
	// Quality and PathID select the measurement feed.
	Quality PathQuality
	PathID  string
	// StreamCapBps is the route's per-stream throughput cap (the divisor
	// of the stream rule; 0 means one stream saturates the path).
	StreamCapBps float64
	// MaxStreams bounds the stream fan-out (default 8).
	MaxStreams int
	// MinChunkBytes/MaxChunkBytes clamp the chunk size (defaults 1 MiB
	// and 64 MiB); ChunkQuantum rounds it (default 256 KiB).
	MinChunkBytes, MaxChunkBytes, ChunkQuantum int64
	// BDPMultiple scales the BDP into a chunk size (default 4).
	BDPMultiple float64
	// FallbackStreams/FallbackChunkBytes apply until the first probe
	// window closes (and when the path is unknown to Quality).
	FallbackStreams    int
	FallbackChunkBytes int64
}

// Tune returns the streams and chunk size the route should use right now.
func (t *Tuner) Tune() (streams int, chunkBytes int64) {
	maxStreams := t.MaxStreams
	if maxStreams <= 0 {
		maxStreams = 8
	}
	minChunk, maxChunk := t.MinChunkBytes, t.MaxChunkBytes
	if minChunk <= 0 {
		minChunk = 1 << 20
	}
	if maxChunk <= 0 {
		maxChunk = 64 << 20
	}
	quantum := t.ChunkQuantum
	if quantum <= 0 {
		quantum = 256 << 10
	}
	mult := t.BDPMultiple
	if mult <= 0 {
		mult = 4
	}

	q, ok := t.Quality.Quality(t.PathID)
	if !ok || q.Windows == 0 || q.GoodputBps <= 0 {
		return t.FallbackStreams, t.FallbackChunkBytes
	}

	streams = 1
	if t.StreamCapBps > 0 {
		streams = int((q.GoodputBps + t.StreamCapBps - 1) / t.StreamCapBps)
	}
	if streams < 1 {
		streams = 1
	}
	if streams > maxStreams {
		streams = maxStreams
	}

	rtt := q.RTT
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	bdpBytes := q.GoodputBps * rtt.Seconds() / 8
	chunkBytes = int64(mult * bdpBytes)
	chunkBytes = (chunkBytes / quantum) * quantum
	if chunkBytes < minChunk {
		chunkBytes = minChunk
	}
	if chunkBytes > maxChunk {
		chunkBytes = maxChunk
	}
	return streams, chunkBytes
}
