// Package netprobe is the link-quality probe subsystem: it continuously
// samples each facility path for round-trip time, loss and goodput,
// reduces each probe window with Welford accumulators (jitter is the
// window's RTT spread), smooths each dimension with an EWMA, and
// collapses the smoothed dimensions into a single 0–100 link score
//
//	score = 100 · s_rtt^w_r · s_jit^w_j · s_los^w_l
//
// where each subscore falls linearly from 1 at the dimension's "good"
// anchor to 0 at its "bad" anchor and the exponents weight how hard each
// dimension drags the product down.
//
// The consumer-facing seam is PathQuality: the facility registry reads
// scores through it to shed new runs from degraded paths before anything
// times out, and the transfer tuner reads goodput/RTT through it to size
// streams and chunks from the measured bandwidth-delay product. Today the
// Prober fills it from simulated measurements (netsim path conditions); a
// socket-based prober implements the same Target/PathQuality contract
// against real WANs without touching any consumer.
//
// The sampling hot path (Gauge.Observe) is allocation-free: window
// accumulators and the history ring are fixed-size state mutated in
// place, guarded by a per-gauge mutex so concurrent probe writers never
// block placement readers for more than a field copy.
package netprobe

import (
	"math"
	"sync"
	"time"
)

// Measurement is one raw probe observation of a path.
type Measurement struct {
	// RTT is the observed round-trip time.
	RTT time.Duration
	// Loss is the observed packet-loss fraction in [0, 1].
	Loss float64
	// GoodputBps is the observed achievable throughput in bits per second.
	GoodputBps float64
}

// Target produces raw measurements for one path; the Prober calls Measure
// once per probe interval. Implementations must be cheap and must not
// block (the simulated target reads netsim conditions; a live target
// would return the latest completed probe round).
type Target interface {
	Measure(now time.Time) Measurement
}

// Quality is a point-in-time smoothed view of one path.
type Quality struct {
	// Score is the collapsed 0–100 link score (100 until the first window
	// closes — a path is healthy until measured otherwise).
	Score float64
	// RTT, Jitter, Loss and GoodputBps are the per-dimension EWMAs.
	RTT        time.Duration
	Jitter     time.Duration
	Loss       float64
	GoodputBps float64
	// LastSample is the instant of the most recent raw observation.
	LastSample time.Time
	// Samples counts raw observations; Windows counts closed (folded)
	// probe windows. Consumers that need settled estimates should require
	// Windows > 0.
	Samples uint64
	Windows uint64
}

// PathQuality exposes smoothed path state by path ID. It is the seam
// between measurement and policy: the Prober implements it over simulated
// or real targets, and the facility registry and transfer tuner consume
// it without knowing which. Implementations must be safe for concurrent
// use.
type PathQuality interface {
	Quality(pathID string) (Quality, bool)
}

// Weights configures the score formula: per-dimension exponents plus the
// good/bad anchors that normalize each dimension into its subscore.
type Weights struct {
	// RTTWeight, JitterWeight and LossWeight are the exponents w_r, w_j,
	// w_l. A weight of 0 removes the dimension from the product.
	RTTWeight, JitterWeight, LossWeight float64
	// A dimension at or below its Good anchor scores 1, at or above its
	// Bad anchor scores 0, linear in between.
	RTTGood, RTTBad       time.Duration
	JitterGood, JitterBad time.Duration
	LossGood, LossBad     float64
}

// DefaultWeights returns the calibrated score parameters: loss is
// squared (it is the strongest signal that a path is unusable for bulk
// data), RTT and jitter enter linearly with anchors spanning the range
// from a healthy lab WAN to an unusable squall.
func DefaultWeights() Weights {
	return Weights{
		RTTWeight: 1, JitterWeight: 1, LossWeight: 2,
		RTTGood: 10 * time.Millisecond, RTTBad: 500 * time.Millisecond,
		JitterGood: 2 * time.Millisecond, JitterBad: 150 * time.Millisecond,
		LossGood: 0, LossBad: 0.05,
	}
}

// subscore maps x onto [0, 1]: 1 at or below good, 0 at or above bad.
func subscore(x, good, bad float64) float64 {
	if bad <= good || x <= good {
		return 1
	}
	if x >= bad {
		return 0
	}
	return (bad - x) / (bad - good)
}

// Score collapses smoothed dimensions into the 0–100 link score.
func (w Weights) Score(rtt, jitter time.Duration, loss float64) float64 {
	s := 100.0
	if w.RTTWeight > 0 {
		s *= math.Pow(subscore(rtt.Seconds(), w.RTTGood.Seconds(), w.RTTBad.Seconds()), w.RTTWeight)
	}
	if w.JitterWeight > 0 {
		s *= math.Pow(subscore(jitter.Seconds(), w.JitterGood.Seconds(), w.JitterBad.Seconds()), w.JitterWeight)
	}
	if w.LossWeight > 0 {
		s *= math.Pow(subscore(loss, w.LossGood, w.LossBad), w.LossWeight)
	}
	return s
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm). The prober folds one per dimension per probe window, so
// jitter falls out as the window's RTT standard deviation without
// retaining samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations folded in.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the population standard deviation (0 below two samples).
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Reset clears the accumulator for the next window.
func (w *Welford) Reset() { *w = Welford{} }

// EWMA is an exponentially weighted moving average: the first update
// seeds the value, each later update moves it by alpha toward the sample.
type EWMA struct {
	alpha  float64
	value  float64
	seeded bool
}

// Update folds a sample in and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.seeded {
		e.value, e.seeded = x, true
		return x
	}
	e.value += e.alpha * (x - e.value)
	return e.value
}

// Value returns the current average (0 before the first update).
func (e *EWMA) Value() float64 { return e.value }

// HistoryPoint is one folded probe window in a gauge's history ring.
type HistoryPoint struct {
	At      time.Time
	Score   float64
	RTT     time.Duration
	Jitter  time.Duration
	Loss    float64
	Goodput float64
}

// Gauge holds one path's probe state: the open window's Welford
// accumulators, the per-dimension EWMAs, the current score, and a bounded
// ring of closed windows. All methods are safe for concurrent use; the
// Observe hot path allocates nothing.
type Gauge struct {
	weights       Weights
	windowSamples int

	mu         sync.Mutex
	winRTT     Welford
	winLoss    Welford
	winGoodput Welford
	rtt        EWMA
	jitter     EWMA
	loss       EWMA
	goodput    EWMA
	score      float64
	lastSample time.Time
	samples    uint64
	windows    uint64
	history    []HistoryPoint // fixed-capacity ring
	histNext   int
	histLen    int
}

func newGauge(weights Weights, windowSamples, historyLen int, alpha float64) *Gauge {
	return &Gauge{
		weights:       weights,
		windowSamples: windowSamples,
		rtt:           EWMA{alpha: alpha},
		jitter:        EWMA{alpha: alpha},
		loss:          EWMA{alpha: alpha},
		goodput:       EWMA{alpha: alpha},
		score:         100,
		history:       make([]HistoryPoint, historyLen),
	}
}

// Observe folds one raw measurement into the open window and, when the
// window is full, closes it: window means (and the RTT spread, as jitter)
// update the EWMAs, the score is recomputed, and the window is recorded
// in the history ring.
func (g *Gauge) Observe(now time.Time, m Measurement) {
	g.mu.Lock()
	g.samples++
	g.lastSample = now
	g.winRTT.Add(m.RTT.Seconds())
	g.winLoss.Add(m.Loss)
	g.winGoodput.Add(m.GoodputBps)
	if g.winRTT.Count() >= g.windowSamples {
		g.foldLocked(now)
	}
	g.mu.Unlock()
}

// foldLocked closes the open window into the EWMAs and history.
func (g *Gauge) foldLocked(now time.Time) {
	rtt := g.rtt.Update(g.winRTT.Mean())
	jit := g.jitter.Update(g.winRTT.Std())
	loss := g.loss.Update(g.winLoss.Mean())
	gp := g.goodput.Update(g.winGoodput.Mean())
	g.winRTT.Reset()
	g.winLoss.Reset()
	g.winGoodput.Reset()
	g.windows++
	g.score = g.weights.Score(
		time.Duration(rtt*float64(time.Second)),
		time.Duration(jit*float64(time.Second)),
		loss)
	if len(g.history) > 0 {
		g.history[g.histNext] = HistoryPoint{
			At: now, Score: g.score,
			RTT:    time.Duration(rtt * float64(time.Second)),
			Jitter: time.Duration(jit * float64(time.Second)),
			Loss:   loss, Goodput: gp,
		}
		g.histNext = (g.histNext + 1) % len(g.history)
		if g.histLen < len(g.history) {
			g.histLen++
		}
	}
}

// Quality returns the gauge's current smoothed view.
func (g *Gauge) Quality() Quality {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Quality{
		Score:      g.score,
		RTT:        time.Duration(g.rtt.Value() * float64(time.Second)),
		Jitter:     time.Duration(g.jitter.Value() * float64(time.Second)),
		Loss:       g.loss.Value(),
		GoodputBps: g.goodput.Value(),
		LastSample: g.lastSample,
		Samples:    g.samples,
		Windows:    g.windows,
	}
}

// History returns the closed windows in the ring, oldest first.
func (g *Gauge) History() []HistoryPoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]HistoryPoint, 0, g.histLen)
	start := g.histNext - g.histLen
	for i := 0; i < g.histLen; i++ {
		out = append(out, g.history[(start+i+len(g.history))%len(g.history)])
	}
	return out
}
