package netprobe

import (
	"math"
	"sync"
	"testing"
	"time"

	"picoprobe/internal/sim"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d, want 8", w.Count())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := w.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", got)
	}
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Errorf("Reset left state: %+v", w)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{alpha: 0.5}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update seeds: got %v", got)
	}
	if got := e.Update(20); got != 15 {
		t.Errorf("second update = %v, want 15", got)
	}
	if got := e.Value(); got != 15 {
		t.Errorf("Value = %v, want 15", got)
	}
}

func TestScoreFormula(t *testing.T) {
	w := Weights{
		RTTWeight: 1, JitterWeight: 1, LossWeight: 2,
		RTTGood: 0, RTTBad: 100 * time.Millisecond,
		JitterGood: 0, JitterBad: 100 * time.Millisecond,
		LossGood: 0, LossBad: 0.1,
	}
	// All dimensions at their good anchors: perfect score.
	if got := w.Score(0, 0, 0); got != 100 {
		t.Errorf("perfect score = %v, want 100", got)
	}
	// Any dimension at its bad anchor zeros the product.
	if got := w.Score(100*time.Millisecond, 0, 0); got != 0 {
		t.Errorf("bad RTT score = %v, want 0", got)
	}
	// Midpoints: 100 · 0.5 · 0.5 · 0.5² = 6.25.
	got := w.Score(50*time.Millisecond, 50*time.Millisecond, 0.05)
	if math.Abs(got-6.25) > 1e-9 {
		t.Errorf("midpoint score = %v, want 6.25", got)
	}
	// Zero-weight dimensions drop out.
	w2 := w
	w2.JitterWeight, w2.LossWeight = 0, 0
	got = w2.Score(50*time.Millisecond, 100*time.Millisecond, 1)
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("RTT-only score = %v, want 50", got)
	}
}

func TestGaugeWindowFoldAndHistory(t *testing.T) {
	g := newGauge(DefaultWeights(), 3, 4, 0.5)
	base := time.Unix(0, 0)

	// Score is optimistic (100) before any window closes.
	if q := g.Quality(); q.Score != 100 || q.Windows != 0 {
		t.Fatalf("pre-window quality = %+v", q)
	}

	for i := 0; i < 3; i++ {
		g.Observe(base.Add(time.Duration(i)*time.Second), Measurement{
			RTT: 20 * time.Millisecond, Loss: 0.0, GoodputBps: 1e9,
		})
	}
	q := g.Quality()
	if q.Windows != 1 || q.Samples != 3 {
		t.Fatalf("after one window: %+v", q)
	}
	if q.RTT != 20*time.Millisecond || q.Jitter != 0 || q.Loss != 0 || q.GoodputBps != 1e9 {
		t.Errorf("first window EWMAs seed with window stats: %+v", q)
	}
	if q.LastSample != base.Add(2*time.Second) {
		t.Errorf("LastSample = %v", q.LastSample)
	}

	// A degraded window halves in via alpha=0.5.
	for i := 3; i < 6; i++ {
		g.Observe(base.Add(time.Duration(i)*time.Second), Measurement{
			RTT: 100 * time.Millisecond, Loss: 0.04, GoodputBps: 2e8,
		})
	}
	q = g.Quality()
	if q.Windows != 2 {
		t.Fatalf("Windows = %d, want 2", q.Windows)
	}
	if q.RTT != 60*time.Millisecond {
		t.Errorf("RTT EWMA = %v, want 60ms", q.RTT)
	}
	if math.Abs(q.Loss-0.02) > 1e-12 {
		t.Errorf("Loss EWMA = %v, want 0.02", q.Loss)
	}
	if q.Score >= 100 || q.Score <= 0 {
		t.Errorf("degraded score = %v, want in (0, 100)", q.Score)
	}

	h := g.History()
	if len(h) != 2 {
		t.Fatalf("history len = %d, want 2", len(h))
	}
	if !h[0].At.Before(h[1].At) {
		t.Errorf("history not oldest-first: %v, %v", h[0].At, h[1].At)
	}

	// The ring caps at its capacity, keeping the newest windows.
	for w := 0; w < 10; w++ {
		for i := 0; i < 3; i++ {
			g.Observe(base.Add(time.Duration(100+w*3+i)*time.Second), Measurement{RTT: time.Millisecond, GoodputBps: 1e9})
		}
	}
	h = g.History()
	if len(h) != 4 {
		t.Fatalf("ring len = %d, want cap 4", len(h))
	}
	for i := 1; i < len(h); i++ {
		if !h[i-1].At.Before(h[i].At) {
			t.Errorf("ring order broken at %d", i)
		}
	}
}

// fakeTarget replays a schedule of measurements.
type fakeTarget struct {
	mu sync.Mutex
	ms []Measurement
	i  int
}

func (f *fakeTarget) Measure(now time.Time) Measurement {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.ms[f.i%len(f.ms)]
	f.i++
	return m
}

func TestProberSamplesOnKernel(t *testing.T) {
	k := sim.NewKernel()
	p := New(k, Config{Interval: time.Second, WindowSamples: 4, Alpha: 0.5})
	tgt := &fakeTarget{ms: []Measurement{{RTT: 30 * time.Millisecond, Loss: 0.01, GoodputBps: 5e8}}}
	if _, err := p.Register("alcf", tgt); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("alcf", tgt); err == nil {
		t.Fatal("duplicate Register should fail")
	}
	epoch := k.Now()
	p.Start(epoch.Add(20 * time.Second))
	k.Run()
	if got := k.Now(); got.After(epoch.Add(21 * time.Second)) {
		t.Fatalf("prober did not honor its until bound: kernel at %v", got)
	}
	q, ok := p.Quality("alcf")
	if !ok {
		t.Fatal("path not found")
	}
	// 19 ticks (1s..19s) → 4 closed windows of 4 samples.
	if q.Samples != 19 || q.Windows != 4 {
		t.Fatalf("samples/windows = %d/%d, want 19/4", q.Samples, q.Windows)
	}
	if q.RTT != 30*time.Millisecond || q.Loss != 0.01 || q.GoodputBps != 5e8 {
		t.Errorf("steady-state EWMAs: %+v", q)
	}
	if _, ok := p.Quality("nope"); ok {
		t.Error("unknown path should miss")
	}
}

func TestProberStop(t *testing.T) {
	k := sim.NewKernel()
	p := New(k, Config{Interval: time.Second})
	tgt := &fakeTarget{ms: []Measurement{{RTT: time.Millisecond, GoodputBps: 1e9}}}
	if _, err := p.Register("a", tgt); err != nil {
		t.Fatal(err)
	}
	epoch := k.Now()
	p.Start(time.Time{}) // unbounded: only Stop ends it
	k.At(epoch.Add(5*time.Second+time.Millisecond), func() { p.Stop() })
	k.Run()
	q, _ := p.Quality("a")
	if q.Samples != 5 {
		t.Fatalf("samples = %d, want 5 (stopped)", q.Samples)
	}
}

func TestTunerBDPRule(t *testing.T) {
	q := &stubQuality{}
	tn := &Tuner{
		Quality: q, PathID: "p",
		StreamCapBps: 100e6, MaxStreams: 8,
		MinChunkBytes: 1 << 20, MaxChunkBytes: 64 << 20, ChunkQuantum: 1 << 20,
		BDPMultiple:     4,
		FallbackStreams: 2, FallbackChunkBytes: 8 << 20,
	}

	// Unknown path / no closed window yet: fallback flags.
	if s, c := tn.Tune(); s != 2 || c != 8<<20 {
		t.Fatalf("fallback = %d/%d", s, c)
	}
	q.set(Quality{Windows: 1, GoodputBps: 950e6, RTT: 40 * time.Millisecond})

	// 950 Mbps / 100 Mbps cap → 10 streams, clamped to 8.
	// BDP = 950e6 · 0.04 / 8 = 4.75 MB; ×4 = 19 MB, quantized to 19 MiB-ish.
	s, c := tn.Tune()
	if s != 8 {
		t.Errorf("streams = %d, want 8 (clamped)", s)
	}
	want := int64(4*950e6*0.04/8) / (1 << 20) * (1 << 20)
	if c != want {
		t.Errorf("chunk = %d, want %d", c, want)
	}

	// Thin degraded path: one stream, chunk clamped to the minimum.
	q.set(Quality{Windows: 5, GoodputBps: 4e6, RTT: 200 * time.Millisecond})
	if s, c := tn.Tune(); s != 1 || c != 1<<20 {
		t.Errorf("thin path = %d/%d, want 1/%d", s, c, 1<<20)
	}

	// Fat path with huge RTT: chunk clamped to the maximum.
	q.set(Quality{Windows: 5, GoodputBps: 10e9, RTT: time.Second})
	if _, c := tn.Tune(); c != 64<<20 {
		t.Errorf("chunk = %d, want max clamp", c)
	}
}

type stubQuality struct {
	mu sync.Mutex
	q  Quality
	ok bool
}

func (s *stubQuality) set(q Quality) {
	s.mu.Lock()
	s.q, s.ok = q, true
	s.mu.Unlock()
}

func (s *stubQuality) Quality(string) (Quality, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q, s.ok
}

// TestObserveAllocationFree is the alloc regression for the sampling hot
// path: a probe round must not allocate, or a long-lived deployment
// sampling every couple of seconds churns the heap forever.
func TestObserveAllocationFree(t *testing.T) {
	g := newGauge(DefaultWeights(), 5, 64, 0.4)
	base := time.Unix(0, 0)
	m := Measurement{RTT: 25 * time.Millisecond, Loss: 0.002, GoodputBps: 8e8}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		i++
		g.Observe(base.Add(time.Duration(i)*time.Second), m)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

// TestConcurrentObserveAndRead hammers one prober with concurrent probe
// writers and quality readers; run under -race this is the data-race
// gate for the gauge and prober locking.
func TestConcurrentObserveAndRead(t *testing.T) {
	p := New(sim.NewKernel(), Config{})
	g, err := p.Register("p", &fakeTarget{ms: []Measurement{{RTT: time.Millisecond, GoodputBps: 1e9}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := time.Unix(int64(w)*1e6, 0)
			for i := 0; i < 5000; i++ {
				g.Observe(base.Add(time.Duration(i)*time.Second), Measurement{
					RTT: time.Duration(i) * time.Microsecond, Loss: 0.001, GoodputBps: 1e9,
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q, ok := p.Quality("p"); ok && q.Score < 0 {
					t.Error("impossible score")
				}
				g.History()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func BenchmarkNetprobeSampler(b *testing.B) {
	g := newGauge(DefaultWeights(), 5, 128, 0.4)
	base := time.Unix(0, 0)
	m := Measurement{RTT: 25 * time.Millisecond, Loss: 0.002, GoodputBps: 8e8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Observe(base.Add(time.Duration(i)*time.Second), m)
	}
}

func BenchmarkNetprobeScore(b *testing.B) {
	w := DefaultWeights()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.Score(40*time.Millisecond, 5*time.Millisecond, 0.01)
	}
}
