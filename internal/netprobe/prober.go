package netprobe

import (
	"fmt"
	"sync"
	"time"

	"picoprobe/internal/sim"
)

// Config parameterizes a Prober. The zero value gets sensible defaults
// from withDefaults.
type Config struct {
	// Interval is the per-path sampling period.
	Interval time.Duration
	// WindowSamples is how many raw samples close one Welford window.
	WindowSamples int
	// Alpha is the EWMA smoothing factor applied per closed window.
	Alpha float64
	// Weights parameterizes the link score (zero value = DefaultWeights).
	Weights Weights
	// HistoryLen bounds each gauge's closed-window history ring.
	HistoryLen int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.WindowSamples <= 0 {
		c.WindowSamples = 5
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.4
	}
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 128
	}
	return c
}

// Prober drives periodic measurements of registered paths on a
// sim.Runtime — the simulation kernel in experiments (deterministic
// virtual-time sampling) or the live runtime in a real deployment — and
// serves the smoothed results through PathQuality. All methods are safe
// for concurrent use.
type Prober struct {
	rt  sim.Runtime
	cfg Config

	mu      sync.Mutex
	order   []string
	paths   map[string]*probePath
	running bool
	stopped bool
	until   time.Time
}

type probePath struct {
	target Target
	gauge  *Gauge
}

// New returns an idle Prober; Register paths, then Start it.
func New(rt sim.Runtime, cfg Config) *Prober {
	return &Prober{rt: rt, cfg: cfg.withDefaults(), paths: map[string]*probePath{}}
}

// Register adds a path and returns its gauge. Registering after Start is
// allowed; the new path joins the next probe round.
func (p *Prober) Register(pathID string, t Target) (*Gauge, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.paths[pathID]; dup {
		return nil, fmt.Errorf("netprobe: duplicate path %q", pathID)
	}
	g := newGauge(p.cfg.Weights, p.cfg.WindowSamples, p.cfg.HistoryLen, p.cfg.Alpha)
	p.paths[pathID] = &probePath{target: t, gauge: g}
	p.order = append(p.order, pathID)
	return g, nil
}

// Start begins the sampling loop. until bounds the loop in virtual or
// wall time — essential under the simulation kernel, whose Run drains the
// event queue and would never return with an unbounded periodic event
// chain; the zero time samples until Stop. Start is idempotent.
func (p *Prober) Start(until time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.until = until
	p.rt.AfterFunc(p.cfg.Interval, p.tick)
}

// Stop halts sampling after any in-flight round. Gauges keep serving
// their last smoothed state.
func (p *Prober) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

// tick samples every registered path once, then reschedules itself.
func (p *Prober) tick() {
	p.mu.Lock()
	if p.stopped {
		p.running = false
		p.mu.Unlock()
		return
	}
	now := p.rt.Now()
	ids := append([]string(nil), p.order...)
	paths := make([]*probePath, len(ids))
	for i, id := range ids {
		paths[i] = p.paths[id]
	}
	until := p.until
	p.mu.Unlock()

	for _, pp := range paths {
		pp.gauge.Observe(now, pp.target.Measure(now))
	}

	if !until.IsZero() && !now.Add(p.cfg.Interval).Before(until) {
		p.mu.Lock()
		p.running = false
		p.mu.Unlock()
		return
	}
	p.rt.AfterFunc(p.cfg.Interval, p.tick)
}

// Quality implements PathQuality.
func (p *Prober) Quality(pathID string) (Quality, bool) {
	p.mu.Lock()
	pp, ok := p.paths[pathID]
	p.mu.Unlock()
	if !ok {
		return Quality{}, false
	}
	return pp.gauge.Quality(), true
}

// Gauge returns the registered path's gauge (history access).
func (p *Prober) Gauge(pathID string) (*Gauge, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp, ok := p.paths[pathID]
	if !ok {
		return nil, false
	}
	return pp.gauge, true
}

// Paths returns the registered path IDs in registration order.
func (p *Prober) Paths() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...)
}
