package fsutil

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q, want v2-longer", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind (err=%v)", err)
	}
}

// A write fault during the atomic write must leave the previous content
// untouched — the core guarantee every checkpoint/manifest caller relies
// on.
func TestWriteFileAtomicFaultKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, fs := range map[string]*FaultFS{
		"fail-write":  {FailWriteAt: 1},
		"short-write": {ShortWriteAt: 1},
		"crash-write": {CrashAtWrite: 1},
		"fail-sync":   {FailSyncAt: 1},
		"crash-sync":  {CrashAtSync: 1},
	} {
		err := WriteFileAtomicFS(fs, path, []byte("torn-new-content"), 0o644)
		if err == nil {
			t.Fatalf("%s: expected error", name)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("%s: %v", name, rerr)
		}
		if string(got) != "good" {
			t.Fatalf("%s: content = %q, want old content intact", name, got)
		}
	}
}

func TestFaultFSCrashStopsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := &FaultFS{CrashAtWrite: 2}
	f, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if _, err := f.Write([]byte("second-torn")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write err = %v, want ErrCrashed", err)
	}
	f.Close()
	if !fs.Crashed() {
		t.Fatal("fs should report crashed")
	}
	// Post-crash: mutations fail, reads still work (recovery reads the
	// disk the crash left behind).
	if _, err := fs.OpenFile(filepath.Join(dir, "b"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v, want ErrCrashed", err)
	}
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v, want ErrCrashed", err)
	}
	raw, err := fs.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("post-crash read: %v", err)
	}
	// The crash write tore: half of "second-torn" (5 of 11 bytes) landed
	// after the intact first write.
	want := "first" + "second-torn"[:len("second-torn")/2]
	if string(raw) != want {
		t.Fatalf("post-crash content = %q, want %q", raw, want)
	}
}

func TestFaultFSShortWriteIsOneShot(t *testing.T) {
	dir := t.TempDir()
	fs := &FaultFS{ShortWriteAt: 1}
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("write after one-shot short write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, _ := os.ReadFile(path)
	if string(raw) != "abc"+"rest" {
		t.Fatalf("content = %q, want torn half then next write", raw)
	}
}
