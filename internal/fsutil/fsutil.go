// Package fsutil is the shared crash-safe filesystem substrate of the
// persistence layers (flow checkpoints, transfer chunk manifests, the
// watcher's processed-file set, and the durable WAL + snapshot store).
// It provides two things the subsystems previously hand-rolled
// inconsistently: WriteFileAtomic, the full tmp + fsync file + rename +
// fsync parent-dir dance (a bare WriteFile+Rename is atomic against
// partial content but can still lose the bytes entirely on power loss),
// and an injectable FS abstraction whose fault-injecting implementation
// (FaultFS) lets tests fail, short-write or "crash" the filesystem at
// the Nth write or sync — the harness every torn-state recovery test in
// the repository drives.
package fsutil

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the persistence layers write through.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// FS abstracts the filesystem operations of the persistence layers so
// tests can substitute a fault-injecting implementation. OS is the real
// thing; nil FS fields throughout the repository default to OS.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (missing files are the caller's concern).
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Truncate resizes a file in place.
	Truncate(name string, size int64) error
	// Stat stats a file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so a rename within it survives power
	// loss. Platforms where directories cannot be fsynced report no error.
	SyncDir(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS is the FS backed by the real filesystem.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and some platforms) refuse to fsync a
		// directory handle; the rename itself is still atomic, so degrade
		// to the old guarantee rather than failing the write.
		return nil
	}
	return nil
}

// WriteFileAtomic writes data to path so that after a crash the file
// holds either its previous content or the full new content, and the new
// content survives power loss once the call returns: the bytes go to a
// temporary file in the same directory, the file is fsynced and closed,
// renamed over path, and the parent directory is fsynced so the rename
// itself is durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(OS, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic through an injectable FS (nil
// means the real filesystem).
func WriteFileAtomicFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	if fsys == nil {
		fsys = OS
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("fsutil: open %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("fsutil: sync dir of %s: %w", path, err)
	}
	return nil
}
