package fsutil

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error returned by a FaultFS operation that was
// configured to fail.
var ErrInjected = errors.New("fsutil: injected fault")

// ErrCrashed is returned by every FaultFS operation after the simulated
// crash point: the process that "crashed" can do nothing further to the
// disk, and whatever the last write left behind — including a torn tail —
// is what recovery finds.
var ErrCrashed = errors.New("fsutil: simulated crash")

// FaultFS wraps an FS and injects failures at the Nth data write or the
// Nth sync (counting from 1 across all files of the FS). Three behaviors
// are supported, checked in this order at the trigger point:
//
//   - CrashAtWrite / CrashAtSync: the trigger op writes roughly half its
//     bytes (writes) or fails (syncs), and every subsequent operation
//     returns ErrCrashed — simulating power loss mid-operation, torn
//     tail included.
//   - ShortWriteAt: the Nth write persists only half its bytes and
//     returns ErrInjected; later operations proceed normally.
//   - FailWriteAt / FailSyncAt: the Nth op fails cleanly (no bytes
//     written) with ErrInjected; later operations proceed normally.
//
// The zero value of each knob disables it. All counters are shared
// across files so "the Nth write" means the Nth write the subsystem
// under test performs, wherever it lands.
type FaultFS struct {
	// Inner is the wrapped FS (nil means the real filesystem).
	Inner FS

	// CrashAtWrite tears the Nth write and fails everything after it.
	CrashAtWrite int
	// CrashAtSync fails the Nth sync and everything after it.
	CrashAtSync int
	// ShortWriteAt persists half of the Nth write, then fails that write.
	ShortWriteAt int
	// FailWriteAt fails the Nth write cleanly.
	FailWriteAt int
	// FailSyncAt fails the Nth sync cleanly.
	FailSyncAt int

	mu      sync.Mutex
	writes  int
	syncs   int
	crashed bool
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return OS
	}
	return f.Inner
}

// Writes reports how many writes the FS has seen (useful for sizing a
// follow-up fault at "the Nth write after this point").
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs reports how many syncs the FS has seen.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Crashed reports whether the simulated crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// checkOp gates non-write, non-sync operations: they only fail after a
// crash.
func (f *FaultFS) checkOp() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

type writeVerdict int

const (
	writeOK writeVerdict = iota
	writeFail
	writeShort
	writeCrash
	writeDead // already crashed
)

// judgeWrite advances the write counter and decides this write's fate.
func (f *FaultFS) judgeWrite() writeVerdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return writeDead
	}
	f.writes++
	switch {
	case f.CrashAtWrite > 0 && f.writes == f.CrashAtWrite:
		f.crashed = true
		return writeCrash
	case f.ShortWriteAt > 0 && f.writes == f.ShortWriteAt:
		return writeShort
	case f.FailWriteAt > 0 && f.writes == f.FailWriteAt:
		return writeFail
	}
	return writeOK
}

// judgeSync advances the sync counter and decides this sync's fate.
func (f *FaultFS) judgeSync() writeVerdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return writeDead
	}
	f.syncs++
	switch {
	case f.CrashAtSync > 0 && f.syncs == f.CrashAtSync:
		f.crashed = true
		return writeCrash
	case f.FailSyncAt > 0 && f.syncs == f.FailSyncAt:
		return writeFail
	}
	return writeOK
}

// faultFile wraps an inner File with the FS's fault schedule.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (w *faultFile) Write(p []byte) (int, error) {
	switch w.fs.judgeWrite() {
	case writeDead:
		return 0, ErrCrashed
	case writeFail:
		return 0, ErrInjected
	case writeShort:
		n, _ := w.f.Write(p[:len(p)/2])
		return n, ErrInjected
	case writeCrash:
		// Half the bytes land — the torn tail recovery must cope with —
		// and the "machine" is now off.
		n, _ := w.f.Write(p[:len(p)/2])
		w.f.Sync()
		return n, ErrCrashed
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	switch w.fs.judgeSync() {
	case writeDead:
		return ErrCrashed
	case writeFail, writeCrash:
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	// Closing is always allowed (even "after the crash" the parent test
	// process must release its descriptors).
	return w.f.Close()
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.checkOp(); err != nil {
		return nil, err
	}
	inner, err := f.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: inner}, nil
}

// ReadFile implements FS. Reads succeed even after a crash: recovery
// reads the disk the crash left behind.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner().ReadFile(name) }

// ReadDir implements FS (readable after a crash, like ReadFile).
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner().ReadDir(name) }

// Stat implements FS (readable after a crash).
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner().Stat(name) }

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner().Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner().Remove(name)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner().MkdirAll(path, perm)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner().Truncate(name, size)
}

// SyncDir implements FS; it counts as a sync for the fault schedule.
func (f *FaultFS) SyncDir(name string) error {
	switch f.judgeSync() {
	case writeDead:
		return ErrCrashed
	case writeFail, writeCrash:
		return ErrInjected
	}
	return f.inner().SyncDir(name)
}
