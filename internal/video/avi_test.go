package video

import (
	"bytes"
	"image"
	"image/color"
	"os"
	"path/filepath"
	"testing"

	"picoprobe/internal/tensor"
)

func grayRamp(w, h int, base uint8) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetGray(x, y, color.Gray{Y: base + uint8((x+y)%32)})
		}
	}
	return img
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 32, 24, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.AddFrame(grayRamp(32, 24, uint8(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if w.FrameCount() != 5 {
		t.Errorf("FrameCount = %d", w.FrameCount())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	info := r.Info()
	if info.Width != 32 || info.Height != 24 || info.FPS != 10 || info.Frames != 5 {
		t.Errorf("info = %+v", info)
	}
	if r.FrameCount() != 5 {
		t.Errorf("reader FrameCount = %d", r.FrameCount())
	}
	img, err := r.DecodeFrame(2)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 24 {
		t.Errorf("decoded bounds = %v", img.Bounds())
	}
	// JPEG is lossy but a flat-ish ramp should stay close: check a pixel is
	// within 12 levels of the original.
	orig := grayRamp(32, 24, 40)
	got := color.GrayModel.Convert(img.At(5, 5)).(color.Gray).Y
	want := orig.GrayAt(5, 5).Y
	diff := int(got) - int(want)
	if diff < -12 || diff > 12 {
		t.Errorf("pixel drifted: got %d want %d", got, want)
	}
}

func TestRIFFStructure(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 16, 16, 25, 80)
	w.AddFrame(grayRamp(16, 16, 0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[0:4]) != "RIFF" || string(raw[8:12]) != "AVI " {
		t.Fatal("missing RIFF/AVI signature")
	}
	// RIFF size must equal file length - 8.
	size := int(uint32(raw[4]) | uint32(raw[5])<<8 | uint32(raw[6])<<16 | uint32(raw[7])<<24)
	if size != len(raw)-8 {
		t.Errorf("RIFF size = %d, want %d", size, len(raw)-8)
	}
	if !bytes.Contains(raw, []byte("MJPG")) {
		t.Error("missing MJPG fourcc")
	}
	if !bytes.Contains(raw, []byte("idx1")) {
		t.Error("missing idx1 index")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0, 10, 10, 90); err == nil {
		t.Error("zero width should error")
	}
	w, _ := NewWriter(&buf, 16, 16, 10, 90)
	if err := w.AddFrame(grayRamp(8, 8, 0)); err == nil {
		t.Error("mismatched frame size should error")
	}
	w.Close()
	if err := w.AddFrame(grayRamp(16, 16, 0)); err == nil {
		t.Error("AddFrame after Close should error")
	}
	if err := w.Close(); err != nil {
		t.Error("double Close should be a no-op")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := OpenReader(bytes.NewReader([]byte("not an avi"))); err == nil {
		t.Error("garbage should be rejected")
	}
	if _, err := OpenReader(bytes.NewReader([]byte("RIFF\x00\x00\x00\x00AVI "))); err == nil {
		t.Error("header-less AVI should be rejected")
	}
}

func TestDecodeFrameOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 16, 16, 10, 90)
	w.AddFrame(grayRamp(16, 16, 0))
	w.Close()
	r, err := OpenReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DecodeFrame(5); err == nil {
		t.Error("out-of-range frame should error")
	}
	if _, err := r.DecodeFrame(-1); err == nil {
		t.Error("negative frame should error")
	}
}

func TestConvertSeries(t *testing.T) {
	// (T=4, H=8, W=8) series with a bright moving dot.
	series := tensor.New(4, 8, 8)
	for ti := 0; ti < 4; ti++ {
		series.Set(1000, ti, ti+1, ti+1)
	}
	var buf bytes.Buffer
	stats, err := Convert(&buf, TensorSource{Series: series}, 0, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != 4 {
		t.Errorf("frames = %d", stats.Frames)
	}
	if stats.CastElements != 4*8*8 {
		t.Errorf("cast elements = %d", stats.CastElements)
	}
	r, err := OpenReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.FrameCount() != 4 {
		t.Errorf("video frames = %d", r.FrameCount())
	}
	// The bright dot should survive conversion in frame 0 at (1,1).
	img, err := r.DecodeFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	y := color.GrayModel.Convert(img.At(1, 1)).(color.Gray).Y
	if y < 150 {
		t.Errorf("bright dot lost: %d", y)
	}
}

func TestConvertErrors(t *testing.T) {
	var buf bytes.Buffer
	flat := tensor.New(3, 4) // rank-2 "series": frames are rank 1
	if _, err := Convert(&buf, TensorSource{Series: flat}, 0, 1, 5); err == nil {
		t.Error("rank-1 frames should be rejected")
	}
}

func TestOpenFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clip.avi")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWriter(f, 16, 16, 10, 90)
	w.AddFrame(grayRamp(16, 16, 10))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.FrameCount() != 1 {
		t.Errorf("frames = %d", r.FrameCount())
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.avi")); err == nil {
		t.Error("missing file should error")
	}
}
