package video

import (
	"bytes"
	"image"
	"os"
	"path/filepath"
	"testing"
)

// TestStreamingMatchesBuffered verifies that the seekable (incremental
// flush + prefix patch) and buffered (layout at Close) writer paths emit
// byte-identical containers for the same frames.
func TestStreamingMatchesBuffered(t *testing.T) {
	frames := make([]*image.Gray, 5)
	for i := range frames {
		img := image.NewGray(image.Rect(0, 0, 48, 32))
		for p := range img.Pix {
			img.Pix[p] = uint8((p*7 + i*31) % 256)
		}
		frames[i] = img
	}

	var buffered bytes.Buffer
	bw, err := NewWriter(&buffered, 48, 32, 25, 90)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.avi")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewWriter(f, 48, 32, 25, 90)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if err := bw.AddFrame(fr); err != nil {
			t.Fatal(err)
		}
		if err := sw.AddFrame(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buffered.Bytes(), streamed) {
		t.Fatalf("streaming container (%d bytes) differs from buffered (%d bytes)",
			len(streamed), buffered.Len())
	}
	rd, err := OpenReader(bytes.NewReader(streamed))
	if err != nil {
		t.Fatal(err)
	}
	if rd.FrameCount() != len(frames) {
		t.Fatalf("frames = %d, want %d", rd.FrameCount(), len(frames))
	}
	if info := rd.Info(); info.Width != 48 || info.Height != 32 || info.Frames != len(frames) {
		t.Fatalf("info = %+v", info)
	}
}

// TestStreamingWriterAtNonzeroOffset verifies the Close-time prefix patch
// lands at the offset where the prefix was written, not at absolute 0, so
// a caller's preamble before the container survives.
func TestStreamingWriterAtNonzeroOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.avi")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	preamble := []byte("16-byte-preamble")
	if _, err := f.Write(preamble); err != nil {
		t.Fatal(err)
	}
	vw, err := NewWriter(f, 16, 16, 25, 90)
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.AddFrame(image.NewGray(image.Rect(0, 0, 16, 16))); err != nil {
		t.Fatal(err)
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, preamble) {
		t.Fatalf("preamble clobbered: %q", raw[:16])
	}
	rd, err := OpenReader(bytes.NewReader(raw[len(preamble):]))
	if err != nil {
		t.Fatal(err)
	}
	if rd.FrameCount() != 1 || rd.Info().Frames != 1 {
		t.Fatalf("container after preamble: frames=%d info=%+v", rd.FrameCount(), rd.Info())
	}
}

// TestAddEncodedFrameCallerOwnsBuffer verifies the writer does not retain
// the caller's buffer (pipelined encoders reuse theirs immediately).
func TestAddEncodedFrameCallerOwnsBuffer(t *testing.T) {
	var out bytes.Buffer
	w, err := NewWriter(&out, 8, 8, 25, 90)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	img := image.NewGray(image.Rect(0, 0, 8, 8))
	if err := w.AddFrame(img); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), w.frames[0]...)
	enc.Write(bytes.Repeat([]byte{0xAB}, 64))
	if err := w.AddEncodedFrame(enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := range enc.Bytes() {
		enc.Bytes()[i] = 0 // clobber the caller buffer
	}
	if !bytes.Equal(w.frames[0], first) {
		t.Fatal("frame 0 mutated")
	}
	for _, b := range w.frames[1] {
		if b != 0xAB {
			t.Fatal("writer retained caller's buffer instead of copying")
		}
	}
}
