package video

import (
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"picoprobe/internal/imaging"
	"picoprobe/internal/tensor"
)

// ConvertStats reports what the series→video conversion did; the cast
// element count is the quantity the paper identifies as the compute
// bottleneck of the spatiotemporal flow.
type ConvertStats struct {
	Frames       int
	CastElements int // number of fp64 values quantized to uint8
}

// FrameSource yields successive (H, W) frames; it abstracts over an
// in-memory tensor and a streaming EMD dataset. Frame may be called from
// multiple goroutines concurrently with distinct indices.
type FrameSource interface {
	// Frames returns the total frame count.
	Frames() int
	// Frame returns frame i as a rank-2 tensor.
	Frame(i int) (*tensor.Dense, error)
}

// TensorSource adapts an in-memory (T, H, W) tensor to a FrameSource.
type TensorSource struct{ Series *tensor.Dense }

// Frames returns the leading-axis extent.
func (s TensorSource) Frames() int { return s.Series.Shape()[0] }

// Frame returns frame i as a view.
func (s TensorSource) Frame(i int) (*tensor.Dense, error) { return s.Series.Frame(i), nil }

// castScratch recycles a frame's quantized pixels and grayscale image
// across conversions (and across the concurrent encode workers).
var castScratch = sync.Pool{New: func() any { return new(castBufs) }}

type castBufs struct {
	pix  []uint8
	gray *image.Gray
}

// Convert runs the paper's EMD→video conversion: every fp64 frame is
// quantized to uint8 against the global intensity range [lo, hi] and
// JPEG-encoded into an MJPEG AVI written to w. Frames are cast and encoded
// by a bounded worker pipeline with order-preserving output, so encoding
// frame i overlaps the read/cast of frame i+k; with a seekable destination
// the writer flushes each frame as it completes instead of buffering the
// whole video.
func Convert(w io.Writer, src FrameSource, lo, hi float64, fps int) (ConvertStats, error) {
	n := src.Frames()
	if n == 0 {
		return ConvertStats{}, fmt.Errorf("video: source has no frames")
	}
	first, err := src.Frame(0)
	if err != nil {
		return ConvertStats{}, err
	}
	if first.Rank() != 2 {
		return ConvertStats{}, fmt.Errorf("video: frames must be rank 2, got %v", first.Shape())
	}
	height, width := first.Shape()[0], first.Shape()[1]
	vw, err := NewWriter(w, width, height, fps, 90)
	if err != nil {
		return ConvertStats{}, err
	}
	opts := &jpeg.Options{Quality: 90}
	var cast atomic.Int64
	render := func(i int, buf *bytes.Buffer) error {
		fr, err := src.Frame(i)
		if err != nil {
			return err
		}
		sc := castScratch.Get().(*castBufs)
		defer castScratch.Put(sc)
		sc.pix = fr.ToUint8Into(sc.pix, lo, hi) // the slow fp64→uint8 cast
		cast.Add(int64(len(sc.pix)))
		img, err := imaging.GrayFrameInto(sc.gray, sc.pix, width, height)
		if err != nil {
			return err
		}
		sc.gray = img
		return jpeg.Encode(buf, img, opts)
	}
	stats := ConvertStats{}
	err = EncodeFrames(n, render, func(i int, data []byte) error {
		if err := vw.AddEncodedFrame(data); err != nil {
			return err
		}
		stats.Frames++
		return nil
	})
	stats.CastElements = int(cast.Load())
	if err != nil {
		return stats, err
	}
	return stats, vw.Close()
}

// encodeBufs recycles the pipeline's per-frame JPEG buffers.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// EncodeFrames renders frames 0..n-1 into JPEG buffers on up to
// GOMAXPROCS workers and calls emit strictly in frame order. render must be
// safe for concurrent calls with distinct indices; emit runs on the calling
// goroutine and the data it receives is only valid for the duration of the
// call. At most ~2×workers frames are in flight, so memory stays bounded
// regardless of n. The first error is returned after the in-flight work
// drains.
func EncodeFrames(n int, render func(i int, buf *bytes.Buffer) error, emit func(i int, data []byte) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		buf := encodeBufs.Get().(*bytes.Buffer)
		defer encodeBufs.Put(buf)
		for i := 0; i < n; i++ {
			buf.Reset()
			if err := render(i, buf); err != nil {
				return err
			}
			if err := emit(i, buf.Bytes()); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		buf *bytes.Buffer
		err error
	}
	window := workers * 2
	if window > n {
		window = n
	}
	slots := make([]chan result, window)
	for i := range slots {
		slots[i] = make(chan result, 1)
	}
	sem := make(chan struct{}, window)
	// The feeder stops dispatching once an error is recorded, so a failure
	// on frame k wastes at most the in-flight window, not the whole
	// series; it reports how many frames it actually dispatched so the
	// consumer drains exactly those.
	var stop atomic.Bool
	dispatched := make(chan int, 1)
	go func() {
		i := 0
		for i < n && !stop.Load() {
			sem <- struct{}{}
			if stop.Load() {
				<-sem
				break
			}
			go func(i int) {
				buf := encodeBufs.Get().(*bytes.Buffer)
				buf.Reset()
				err := render(i, buf)
				slots[i%window] <- result{buf: buf, err: err}
			}(i)
			i++
		}
		dispatched <- i
	}()
	var firstErr error
	total := n
	for consumed := 0; consumed < total; {
		select {
		case d := <-dispatched:
			total = d
		case r := <-slots[consumed%window]:
			if firstErr == nil {
				if r.err != nil {
					firstErr = r.err
				} else if err := emit(consumed, r.buf.Bytes()); err != nil {
					firstErr = err
				}
				if firstErr != nil {
					stop.Store(true)
				}
			}
			encodeBufs.Put(r.buf)
			<-sem
			consumed++
		}
	}
	return firstErr
}
