package video

import (
	"fmt"
	"io"

	"picoprobe/internal/imaging"
	"picoprobe/internal/tensor"
)

// ConvertStats reports what the series→video conversion did; the cast
// element count is the quantity the paper identifies as the compute
// bottleneck of the spatiotemporal flow.
type ConvertStats struct {
	Frames       int
	CastElements int // number of fp64 values quantized to uint8
}

// FrameSource yields successive (H, W) frames; it abstracts over an
// in-memory tensor and a streaming EMD dataset.
type FrameSource interface {
	// Frames returns the total frame count.
	Frames() int
	// Frame returns frame i as a rank-2 tensor.
	Frame(i int) (*tensor.Dense, error)
}

// TensorSource adapts an in-memory (T, H, W) tensor to a FrameSource.
type TensorSource struct{ Series *tensor.Dense }

// Frames returns the leading-axis extent.
func (s TensorSource) Frames() int { return s.Series.Shape()[0] }

// Frame returns frame i as a view.
func (s TensorSource) Frame(i int) (*tensor.Dense, error) { return s.Series.Frame(i), nil }

// Convert runs the paper's EMD→video conversion: every fp64 frame is
// quantized to uint8 against the global intensity range [lo, hi] and
// JPEG-encoded into an MJPEG AVI written to w.
func Convert(w io.Writer, src FrameSource, lo, hi float64, fps int) (ConvertStats, error) {
	n := src.Frames()
	if n == 0 {
		return ConvertStats{}, fmt.Errorf("video: source has no frames")
	}
	first, err := src.Frame(0)
	if err != nil {
		return ConvertStats{}, err
	}
	if first.Rank() != 2 {
		return ConvertStats{}, fmt.Errorf("video: frames must be rank 2, got %v", first.Shape())
	}
	height, width := first.Shape()[0], first.Shape()[1]
	vw, err := NewWriter(w, width, height, fps, 90)
	if err != nil {
		return ConvertStats{}, err
	}
	stats := ConvertStats{}
	for i := 0; i < n; i++ {
		fr, err := src.Frame(i)
		if err != nil {
			return stats, err
		}
		pixels := fr.ToUint8(lo, hi) // the slow fp64→uint8 cast
		stats.CastElements += len(pixels)
		img, err := imaging.GrayFrame(pixels, width, height)
		if err != nil {
			return stats, err
		}
		if err := vw.AddFrame(img); err != nil {
			return stats, err
		}
		stats.Frames++
	}
	return stats, vw.Close()
}
