// Package video converts microscopy series to playable video. The paper's
// spatiotemporal flow converts incoming EMD files to MP4 before YOLO
// inference and reports that the fp64→uint8 data-type cast dominates the
// compute phase; this package reproduces the same pipeline with a
// self-contained MJPEG-in-AVI container (RIFF with a standard 'hdrl'
// header, '00dc' JPEG chunks and an 'idx1' index), which common players
// accept, plus a matching reader used by the tests and the annotation
// pass.
package video

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"image"
	"image/jpeg"
	"io"
	"os"
)

const (
	avifHasIndex  = 0x00000010
	aviifKeyframe = 0x00000010
)

// Writer assembles an MJPEG AVI file. Frames are JPEG-encoded as they are
// added; the container is laid out at Close (RIFF requires sizes up
// front, so chunks are buffered in memory — at JPEG sizes even the paper's
// 600-frame series is tens of megabytes).
type Writer struct {
	w             io.Writer
	width, height int
	fps           int
	quality       int
	frames        [][]byte
	closed        bool
}

// NewWriter returns a writer producing width x height MJPEG video at the
// given frame rate. Quality is the JPEG quality (1-100).
func NewWriter(w io.Writer, width, height, fps, quality int) (*Writer, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("video: invalid dimensions %dx%d", width, height)
	}
	if fps <= 0 {
		fps = 25
	}
	if quality <= 0 || quality > 100 {
		quality = 90
	}
	return &Writer{w: w, width: width, height: height, fps: fps, quality: quality}, nil
}

// AddFrame JPEG-encodes img and appends it as the next frame. The image
// bounds must match the writer's dimensions.
func (w *Writer) AddFrame(img image.Image) error {
	if w.closed {
		return fmt.Errorf("video: writer closed")
	}
	b := img.Bounds()
	if b.Dx() != w.width || b.Dy() != w.height {
		return fmt.Errorf("video: frame is %dx%d, want %dx%d", b.Dx(), b.Dy(), w.width, w.height)
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, img, &jpeg.Options{Quality: w.quality}); err != nil {
		return fmt.Errorf("video: jpeg encode: %w", err)
	}
	w.frames = append(w.frames, buf.Bytes())
	return nil
}

// FrameCount returns the number of frames added so far.
func (w *Writer) FrameCount() int { return len(w.frames) }

// Close lays out and writes the complete AVI container.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true

	var movi bytes.Buffer
	movi.WriteString("movi")
	type idxEntry struct{ off, size uint32 }
	idx := make([]idxEntry, len(w.frames))
	for i, fr := range w.frames {
		idx[i] = idxEntry{off: uint32(movi.Len()), size: uint32(len(fr))}
		movi.WriteString("00dc")
		binary.Write(&movi, binary.LittleEndian, uint32(len(fr)))
		movi.Write(fr)
		if len(fr)%2 == 1 {
			movi.WriteByte(0) // RIFF chunks are word aligned
		}
	}

	var idx1 bytes.Buffer
	for _, e := range idx {
		idx1.WriteString("00dc")
		binary.Write(&idx1, binary.LittleEndian, uint32(aviifKeyframe))
		binary.Write(&idx1, binary.LittleEndian, e.off)
		binary.Write(&idx1, binary.LittleEndian, e.size)
	}

	maxFrame := uint32(0)
	for _, fr := range w.frames {
		if uint32(len(fr)) > maxFrame {
			maxFrame = uint32(len(fr))
		}
	}

	// avih: main AVI header (14 dwords).
	var avih bytes.Buffer
	putU32 := func(b *bytes.Buffer, v uint32) { binary.Write(b, binary.LittleEndian, v) }
	putU32(&avih, uint32(1_000_000/w.fps)) // microseconds per frame
	putU32(&avih, maxFrame*uint32(w.fps))  // max bytes/sec
	putU32(&avih, 0)                       // padding granularity
	putU32(&avih, avifHasIndex)
	putU32(&avih, uint32(len(w.frames)))
	putU32(&avih, 0) // initial frames
	putU32(&avih, 1) // streams
	putU32(&avih, maxFrame)
	putU32(&avih, uint32(w.width))
	putU32(&avih, uint32(w.height))
	for i := 0; i < 4; i++ {
		putU32(&avih, 0)
	}

	// strh: stream header.
	var strh bytes.Buffer
	strh.WriteString("vids")
	strh.WriteString("MJPG")
	putU32(&strh, 0) // flags
	putU32(&strh, 0) // priority + language
	putU32(&strh, 0) // initial frames
	putU32(&strh, 1) // scale
	putU32(&strh, uint32(w.fps))
	putU32(&strh, 0) // start
	putU32(&strh, uint32(len(w.frames)))
	putU32(&strh, maxFrame)
	putU32(&strh, 0xFFFFFFFF) // quality: default
	putU32(&strh, 0)          // sample size
	binary.Write(&strh, binary.LittleEndian, uint16(0))
	binary.Write(&strh, binary.LittleEndian, uint16(0))
	binary.Write(&strh, binary.LittleEndian, uint16(w.width))
	binary.Write(&strh, binary.LittleEndian, uint16(w.height))

	// strf: BITMAPINFOHEADER.
	var strf bytes.Buffer
	putU32(&strf, 40)
	putU32(&strf, uint32(w.width))
	putU32(&strf, uint32(w.height))
	binary.Write(&strf, binary.LittleEndian, uint16(1))
	binary.Write(&strf, binary.LittleEndian, uint16(24))
	strf.WriteString("MJPG")
	putU32(&strf, uint32(w.width*w.height*3))
	putU32(&strf, 0)
	putU32(&strf, 0)
	putU32(&strf, 0)
	putU32(&strf, 0)

	strl := wrapList("strl", append(wrapChunk("strh", strh.Bytes()), wrapChunk("strf", strf.Bytes())...))
	hdrl := wrapList("hdrl", append(wrapChunk("avih", avih.Bytes()), strl...))

	var payload bytes.Buffer
	payload.WriteString("AVI ")
	payload.Write(hdrl)
	// movi buffer already starts with its list type; wrap as a LIST chunk.
	payload.WriteString("LIST")
	binary.Write(&payload, binary.LittleEndian, uint32(movi.Len()))
	payload.Write(movi.Bytes())
	payload.Write(wrapChunk("idx1", idx1.Bytes()))

	if _, err := io.WriteString(w.w, "RIFF"); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if err := binary.Write(w.w, binary.LittleEndian, uint32(payload.Len())); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if _, err := w.w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	return nil
}

func wrapChunk(fourcc string, data []byte) []byte {
	var b bytes.Buffer
	b.WriteString(fourcc)
	binary.Write(&b, binary.LittleEndian, uint32(len(data)))
	b.Write(data)
	if len(data)%2 == 1 {
		b.WriteByte(0)
	}
	return b.Bytes()
}

func wrapList(listType string, contents []byte) []byte {
	var b bytes.Buffer
	b.WriteString("LIST")
	binary.Write(&b, binary.LittleEndian, uint32(len(contents)+4))
	b.WriteString(listType)
	b.Write(contents)
	return b.Bytes()
}

// Info summarizes a parsed AVI file.
type Info struct {
	Width, Height int
	FPS           int
	Frames        int
}

// Reader decodes MJPEG AVI files produced by Writer (and tolerates other
// MJPEG AVIs with a standard layout).
type Reader struct {
	info   Info
	frames [][]byte // raw JPEG bytes
}

// OpenReader parses the container from r.
func OpenReader(r io.Reader) (*Reader, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("video: read: %w", err)
	}
	if len(raw) < 12 || string(raw[0:4]) != "RIFF" || string(raw[8:12]) != "AVI " {
		return nil, fmt.Errorf("video: not a RIFF AVI file")
	}
	rd := &Reader{}
	pos := 12
	for pos+8 <= len(raw) {
		fourcc := string(raw[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(raw[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(raw) {
			return nil, fmt.Errorf("video: chunk %q overruns file", fourcc)
		}
		switch fourcc {
		case "LIST":
			listType := string(raw[body : body+4])
			switch listType {
			case "hdrl":
				if err := rd.parseHeaders(raw[body+4 : body+size]); err != nil {
					return nil, err
				}
			case "movi":
				if err := rd.parseMovi(raw[body+4 : body+size]); err != nil {
					return nil, err
				}
			}
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	if rd.info.Width == 0 {
		return nil, fmt.Errorf("video: missing avih header")
	}
	return rd, nil
}

// Open parses an AVI file from disk.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}
	defer f.Close()
	return OpenReader(f)
}

func (rd *Reader) parseHeaders(hdrl []byte) error {
	pos := 0
	for pos+8 <= len(hdrl) {
		fourcc := string(hdrl[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(hdrl[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(hdrl) {
			return fmt.Errorf("video: header chunk %q overruns hdrl", fourcc)
		}
		if fourcc == "avih" && size >= 40 {
			usPerFrame := binary.LittleEndian.Uint32(hdrl[body:])
			if usPerFrame > 0 {
				rd.info.FPS = int(1_000_000 / usPerFrame)
			}
			rd.info.Frames = int(binary.LittleEndian.Uint32(hdrl[body+16:]))
			rd.info.Width = int(binary.LittleEndian.Uint32(hdrl[body+32:]))
			rd.info.Height = int(binary.LittleEndian.Uint32(hdrl[body+36:]))
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	return nil
}

func (rd *Reader) parseMovi(movi []byte) error {
	pos := 0
	for pos+8 <= len(movi) {
		fourcc := string(movi[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(movi[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(movi) {
			return fmt.Errorf("video: movi chunk overruns")
		}
		if fourcc == "00dc" {
			rd.frames = append(rd.frames, movi[body:body+size])
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	return nil
}

// Info returns the parsed stream parameters.
func (rd *Reader) Info() Info { return rd.info }

// FrameCount returns the number of stored frames.
func (rd *Reader) FrameCount() int { return len(rd.frames) }

// DecodeFrame decodes frame i to an image.
func (rd *Reader) DecodeFrame(i int) (image.Image, error) {
	if i < 0 || i >= len(rd.frames) {
		return nil, fmt.Errorf("video: frame %d out of range [0,%d)", i, len(rd.frames))
	}
	img, err := jpeg.Decode(bytes.NewReader(rd.frames[i]))
	if err != nil {
		return nil, fmt.Errorf("video: decode frame %d: %w", i, err)
	}
	return img, nil
}
