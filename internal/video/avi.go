// Package video converts microscopy series to playable video. The paper's
// spatiotemporal flow converts incoming EMD files to MP4 before YOLO
// inference and reports that the fp64→uint8 data-type cast dominates the
// compute phase; this package reproduces the same pipeline with a
// self-contained MJPEG-in-AVI container (RIFF with a standard 'hdrl'
// header, '00dc' JPEG chunks and an 'idx1' index), which common players
// accept, plus a matching reader used by the tests and the annotation
// pass.
package video

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"image"
	"image/jpeg"
	"io"
	"os"
)

const (
	avifHasIndex  = 0x00000010
	aviifKeyframe = 0x00000010
)

// Writer assembles an MJPEG AVI file. Frames are JPEG-encoded as they are
// added. When the destination supports seeking (e.g. an *os.File) the
// writer streams: each encoded frame is flushed immediately and the
// fixed-size RIFF prefix is patched at Close, so memory stays bounded by
// one frame no matter how long the series runs. For plain io.Writers
// (pipes, hash sinks) it falls back to buffering the encoded frames until
// Close, since RIFF wants sizes up front.
type Writer struct {
	w             io.Writer
	ws            io.WriteSeeker // non-nil: streaming mode
	width, height int
	fps           int
	quality       int

	frames  [][]byte   // buffered mode: encoded JPEG per frame
	idx     []idxEntry // streaming mode: chunk index for idx1
	base    int64      // streaming mode: offset of the prefix in ws
	count   int
	maxSize uint32 // largest encoded frame
	moviLen uint32 // bytes inside the movi LIST (including "movi" tag)
	encBuf  bytes.Buffer
	closed  bool
}

type idxEntry struct{ off, size uint32 }

// NewWriter returns a writer producing width x height MJPEG video at the
// given frame rate. Quality is the JPEG quality (1-100).
func NewWriter(w io.Writer, width, height, fps, quality int) (*Writer, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("video: invalid dimensions %dx%d", width, height)
	}
	if fps <= 0 {
		fps = 25
	}
	if quality <= 0 || quality > 100 {
		quality = 90
	}
	vw := &Writer{w: w, width: width, height: height, fps: fps, quality: quality}
	if ws, ok := w.(io.WriteSeeker); ok {
		base, err := ws.Seek(0, io.SeekCurrent)
		if err != nil {
			// Seekable in type only (e.g. a pipe wrapped in a seeker
			// interface); fall back to buffered mode.
			return vw, nil
		}
		vw.ws = ws
		vw.base = base
		vw.moviLen = 4 // the "movi" list tag
		// Reserve the prefix with placeholder sizes; Close rewrites it in
		// place (the prefix length does not depend on the frame count).
		if _, err := ws.Write(vw.prefix(0)); err != nil {
			return nil, fmt.Errorf("video: %w", err)
		}
	}
	return vw, nil
}

// AddFrame JPEG-encodes img and appends it as the next frame. The image
// bounds must match the writer's dimensions.
func (w *Writer) AddFrame(img image.Image) error {
	if w.closed {
		return fmt.Errorf("video: writer closed")
	}
	b := img.Bounds()
	if b.Dx() != w.width || b.Dy() != w.height {
		return fmt.Errorf("video: frame is %dx%d, want %dx%d", b.Dx(), b.Dy(), w.width, w.height)
	}
	w.encBuf.Reset()
	if err := jpeg.Encode(&w.encBuf, img, &jpeg.Options{Quality: w.quality}); err != nil {
		return fmt.Errorf("video: jpeg encode: %w", err)
	}
	return w.AddEncodedFrame(w.encBuf.Bytes())
}

// AddEncodedFrame appends an already-JPEG-encoded frame. The caller keeps
// ownership of data (the writer copies or flushes it before returning), so
// pipelined encoders can reuse their buffers.
func (w *Writer) AddEncodedFrame(data []byte) error {
	if w.closed {
		return fmt.Errorf("video: writer closed")
	}
	size := uint32(len(data))
	if size > w.maxSize {
		w.maxSize = size
	}
	if w.ws == nil {
		w.frames = append(w.frames, append([]byte(nil), data...))
		w.count++
		return nil
	}
	w.idx = append(w.idx, idxEntry{off: w.moviLen, size: size})
	var hdr [8]byte
	copy(hdr[:4], "00dc")
	binary.LittleEndian.PutUint32(hdr[4:], size)
	if _, err := w.ws.Write(hdr[:]); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if _, err := w.ws.Write(data); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	w.moviLen += 8 + size
	if size%2 == 1 {
		if _, err := w.ws.Write([]byte{0}); err != nil {
			return fmt.Errorf("video: %w", err)
		}
		w.moviLen++
	}
	w.count++
	return nil
}

// FrameCount returns the number of frames added so far.
func (w *Writer) FrameCount() int { return w.count }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}

// prefixLen is the fixed length of the container prefix rendered by
// prefix(): RIFF header (12) + hdrl LIST (8+4+8+56 avih, 12+8+56 strh,
// 8+40 strf) + movi LIST header (12).
const prefixLen = 12 + 8 + 4 + (8 + 56) + (12 + (8 + 56) + (8 + 40)) + 12

// prefix renders the fixed-length container prefix — everything from
// "RIFF" through the movi LIST header — for the current frame count and
// sizes. riffSize is the RIFF chunk payload size (0 while streaming; the
// real value is patched at Close).
func (w *Writer) prefix(riffSize uint32) []byte {
	b := make([]byte, 0, prefixLen)
	b = append(b, "RIFF"...)
	b = appendU32(b, riffSize)
	b = append(b, "AVI "...)

	// hdrl LIST: avih + strl(strh, strf).
	const avihLen, strhLen, strfLen = 56, 56, 40
	hdrlLen := 4 + 8 + avihLen + 12 + 8 + strhLen + 8 + strfLen
	b = append(b, "LIST"...)
	b = appendU32(b, uint32(hdrlLen))
	b = append(b, "hdrl"...)

	// avih: main AVI header (14 dwords).
	b = append(b, "avih"...)
	b = appendU32(b, avihLen)
	b = appendU32(b, uint32(1_000_000/w.fps)) // microseconds per frame
	b = appendU32(b, w.maxSize*uint32(w.fps)) // max bytes/sec
	b = appendU32(b, 0)                       // padding granularity
	b = appendU32(b, avifHasIndex)
	b = appendU32(b, uint32(w.count))
	b = appendU32(b, 0) // initial frames
	b = appendU32(b, 1) // streams
	b = appendU32(b, w.maxSize)
	b = appendU32(b, uint32(w.width))
	b = appendU32(b, uint32(w.height))
	for i := 0; i < 4; i++ {
		b = appendU32(b, 0)
	}

	// strl LIST: strh + strf.
	b = append(b, "LIST"...)
	b = appendU32(b, uint32(4+8+strhLen+8+strfLen))
	b = append(b, "strl"...)

	// strh: stream header.
	b = append(b, "strh"...)
	b = appendU32(b, strhLen)
	b = append(b, "vids"...)
	b = append(b, "MJPG"...)
	b = appendU32(b, 0) // flags
	b = appendU32(b, 0) // priority + language
	b = appendU32(b, 0) // initial frames
	b = appendU32(b, 1) // scale
	b = appendU32(b, uint32(w.fps))
	b = appendU32(b, 0) // start
	b = appendU32(b, uint32(w.count))
	b = appendU32(b, w.maxSize)
	b = appendU32(b, 0xFFFFFFFF) // quality: default
	b = appendU32(b, 0)          // sample size
	b = appendU16(b, 0)
	b = appendU16(b, 0)
	b = appendU16(b, uint16(w.width))
	b = appendU16(b, uint16(w.height))

	// strf: BITMAPINFOHEADER.
	b = append(b, "strf"...)
	b = appendU32(b, strfLen)
	b = appendU32(b, 40)
	b = appendU32(b, uint32(w.width))
	b = appendU32(b, uint32(w.height))
	b = appendU16(b, 1)
	b = appendU16(b, 24)
	b = append(b, "MJPG"...)
	b = appendU32(b, uint32(w.width*w.height*3))
	b = appendU32(b, 0)
	b = appendU32(b, 0)
	b = appendU32(b, 0)
	b = appendU32(b, 0)

	// movi LIST header; chunks follow (or are already in place).
	b = append(b, "LIST"...)
	b = appendU32(b, w.moviLen)
	b = append(b, "movi"...)
	return b
}

// idx1Chunk renders the idx1 index chunk for the given entries.
func idx1Chunk(idx []idxEntry) []byte {
	b := make([]byte, 0, 8+16*len(idx))
	b = append(b, "idx1"...)
	b = appendU32(b, uint32(16*len(idx)))
	for _, e := range idx {
		b = append(b, "00dc"...)
		b = appendU32(b, aviifKeyframe)
		b = appendU32(b, e.off)
		b = appendU32(b, e.size)
	}
	return b
}

// Close completes the container: in streaming mode it appends the index
// and patches the prefix in place; in buffered mode it lays out and writes
// the whole file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true

	if w.ws != nil {
		idx1 := idx1Chunk(w.idx)
		if _, err := w.ws.Write(idx1); err != nil {
			return fmt.Errorf("video: %w", err)
		}
		// RIFF payload: everything after the 8-byte RIFF chunk header.
		riffSize := uint32(prefixLen-8) + (w.moviLen - 4) + uint32(len(idx1))
		pre := w.prefix(riffSize)
		if _, err := w.ws.Seek(w.base, io.SeekStart); err != nil {
			return fmt.Errorf("video: %w", err)
		}
		if _, err := w.ws.Write(pre); err != nil {
			return fmt.Errorf("video: %w", err)
		}
		if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("video: %w", err)
		}
		return nil
	}

	need := 4
	for _, fr := range w.frames {
		need += 8 + len(fr) + len(fr)%2
	}
	movi := make([]byte, 0, need)
	movi = append(movi, "movi"...)
	idx := make([]idxEntry, len(w.frames))
	for i, fr := range w.frames {
		idx[i] = idxEntry{off: uint32(len(movi)), size: uint32(len(fr))}
		movi = append(movi, "00dc"...)
		movi = appendU32(movi, uint32(len(fr)))
		movi = append(movi, fr...)
		if len(fr)%2 == 1 {
			movi = append(movi, 0) // RIFF chunks are word aligned
		}
	}
	w.moviLen = uint32(len(movi))

	idx1 := idx1Chunk(idx)
	riffSize := uint32(prefixLen-8) + (w.moviLen - 4) + uint32(len(idx1))
	pre := w.prefix(riffSize)

	// pre ends with the movi LIST header ("LIST" + size + "movi") and the
	// movi buffer starts with the same "movi" tag, so emit the prefix
	// without its trailing tag, then the buffer.
	if _, err := w.w.Write(pre[:len(pre)-4]); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if _, err := w.w.Write(movi); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if _, err := w.w.Write(idx1); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	return nil
}

// Info summarizes a parsed AVI file.
type Info struct {
	Width, Height int
	FPS           int
	Frames        int
}

// Reader decodes MJPEG AVI files produced by Writer (and tolerates other
// MJPEG AVIs with a standard layout).
type Reader struct {
	info   Info
	frames [][]byte // raw JPEG bytes
}

// OpenReader parses the container from r.
func OpenReader(r io.Reader) (*Reader, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("video: read: %w", err)
	}
	if len(raw) < 12 || string(raw[0:4]) != "RIFF" || string(raw[8:12]) != "AVI " {
		return nil, fmt.Errorf("video: not a RIFF AVI file")
	}
	rd := &Reader{}
	pos := 12
	for pos+8 <= len(raw) {
		fourcc := string(raw[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(raw[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(raw) {
			return nil, fmt.Errorf("video: chunk %q overruns file", fourcc)
		}
		switch fourcc {
		case "LIST":
			listType := string(raw[body : body+4])
			switch listType {
			case "hdrl":
				if err := rd.parseHeaders(raw[body+4 : body+size]); err != nil {
					return nil, err
				}
			case "movi":
				if err := rd.parseMovi(raw[body+4 : body+size]); err != nil {
					return nil, err
				}
			}
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	if rd.info.Width == 0 {
		return nil, fmt.Errorf("video: missing avih header")
	}
	return rd, nil
}

// Open parses an AVI file from disk.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}
	defer f.Close()
	return OpenReader(f)
}

func (rd *Reader) parseHeaders(hdrl []byte) error {
	pos := 0
	for pos+8 <= len(hdrl) {
		fourcc := string(hdrl[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(hdrl[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(hdrl) {
			return fmt.Errorf("video: header chunk %q overruns hdrl", fourcc)
		}
		if fourcc == "avih" && size >= 40 {
			usPerFrame := binary.LittleEndian.Uint32(hdrl[body:])
			if usPerFrame > 0 {
				rd.info.FPS = int(1_000_000 / usPerFrame)
			}
			rd.info.Frames = int(binary.LittleEndian.Uint32(hdrl[body+16:]))
			rd.info.Width = int(binary.LittleEndian.Uint32(hdrl[body+32:]))
			rd.info.Height = int(binary.LittleEndian.Uint32(hdrl[body+36:]))
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	return nil
}

func (rd *Reader) parseMovi(movi []byte) error {
	pos := 0
	for pos+8 <= len(movi) {
		fourcc := string(movi[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(movi[pos+4 : pos+8]))
		body := pos + 8
		if body+size > len(movi) {
			return fmt.Errorf("video: movi chunk overruns")
		}
		if fourcc == "00dc" {
			rd.frames = append(rd.frames, movi[body:body+size])
		}
		pos = body + size
		if size%2 == 1 {
			pos++
		}
	}
	return nil
}

// Info returns the parsed stream parameters.
func (rd *Reader) Info() Info { return rd.info }

// FrameCount returns the number of stored frames.
func (rd *Reader) FrameCount() int { return len(rd.frames) }

// DecodeFrame decodes frame i to an image.
func (rd *Reader) DecodeFrame(i int) (image.Image, error) {
	if i < 0 || i >= len(rd.frames) {
		return nil, fmt.Errorf("video: frame %d out of range [0,%d)", i, len(rd.frames))
	}
	img, err := jpeg.Decode(bytes.NewReader(rd.frames[i]))
	if err != nil {
		return nil, fmt.Errorf("video: decode frame %d: %w", i, err)
	}
	return img, nil
}
