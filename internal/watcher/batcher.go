package watcher

import (
	"sync"
	"time"
)

// Batch is a coalesced group of settled files, emitted in settle order —
// the multi-file transfer task the ingest data plane moves as one unit.
type Batch struct {
	// Seq numbers batches from 1 in emission order.
	Seq int
	// Files are the batch's events in the order they settled.
	Files []Event
	// Bytes is the batch's total payload.
	Bytes int64
}

// BatchOptions configures a Batcher.
type BatchOptions struct {
	// MaxBatchFiles caps how many files one batch may hold (default 16).
	MaxBatchFiles int
	// MaxBatchBytes caps a batch's payload; a single file larger than the
	// cap still travels (as a batch of one). 0 means uncapped.
	MaxBatchBytes int64
	// Linger is the quiet period after the last pending event before a
	// below-threshold batch is flushed anyway (default 200ms). A detector
	// burst therefore coalesces, while a lone file is not held hostage.
	Linger time.Duration
	// BudgetBytes is the bytes-in-flight backpressure budget: batches are
	// cut to fit it, and the next batch is withheld while acknowledged-
	// but-unfinished bytes plus the candidate would exceed it. A single
	// file larger than the whole budget still travels alone (when nothing
	// else is in flight) rather than deadlocking the pipeline. 0 disables
	// backpressure.
	BudgetBytes int64
}

// BatchStats counts a batcher's lifetime activity.
type BatchStats struct {
	// Batches and Files are the emitted totals.
	Batches, Files int
	// Bytes is the emitted payload total.
	Bytes int64
	// MaxInFlightBytes is the high-water mark of unacknowledged bytes.
	MaxInFlightBytes int64
}

// Batcher coalesces watcher events into multi-file batches under a
// bytes-in-flight budget. Where the pre-rework pipeline started one
// transfer task per settled file, the batcher shapes bursts into a few
// large tasks and throttles announcement when too much data is already in
// flight — the backpressure half of the ingest data plane (DESIGN.md §8).
//
// Call Done with each consumed batch once its downstream work (transfer,
// flow) completes; that releases its bytes from the budget.
type Batcher struct {
	opts    BatchOptions
	out     chan Batch
	release chan int64
	stop    chan struct{}
	done    chan struct{}

	mu    sync.Mutex
	stats BatchStats
}

// NewBatcher starts a batcher consuming events (normally Watcher.Events).
// The batcher stops, flushes pending files and closes Batches when events
// is closed, or immediately on Stop.
func NewBatcher(events <-chan Event, opts BatchOptions) *Batcher {
	if opts.MaxBatchFiles <= 0 {
		opts.MaxBatchFiles = 16
	}
	if opts.Linger <= 0 {
		opts.Linger = 200 * time.Millisecond
	}
	b := &Batcher{
		opts:    opts,
		out:     make(chan Batch),
		release: make(chan int64, 64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.run(events)
	return b
}

// Batches returns the channel on which coalesced batches are emitted. It
// is closed after the event source closes (with a final flush) or Stop.
func (b *Batcher) Batches() <-chan Batch { return b.out }

// Done releases a consumed batch's bytes from the in-flight budget.
func (b *Batcher) Done(batch Batch) {
	select {
	case b.release <- batch.Bytes:
	case <-b.done:
	}
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Stop halts the batcher without waiting for pending batches.
func (b *Batcher) Stop() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	<-b.done
}

func (b *Batcher) run(events <-chan Event) {
	defer close(b.done)
	defer close(b.out)

	var (
		pending  []Event
		bytes    int64
		inFlight int64
		lingerC  <-chan time.Time
		lingerT  *time.Timer
		expired  bool
		closed   bool
		seq      int
	)
	stopLinger := func() {
		if lingerT != nil {
			lingerT.Stop()
			lingerT = nil
			lingerC = nil
		}
	}
	defer stopLinger()
	resetLinger := func() {
		stopLinger()
		expired = false
		lingerT = time.NewTimer(b.opts.Linger)
		lingerC = lingerT.C
	}

	// cut slices the head of pending into the next candidate batch,
	// honoring the byte caps — including the in-flight budget, so the
	// inFlight==0 escape below can only ever admit a single oversized
	// file, never a multi-file batch trimmable to fit — and the file cap
	// (always at least one file).
	byteCap := b.opts.MaxBatchBytes
	if b.opts.BudgetBytes > 0 && (byteCap <= 0 || b.opts.BudgetBytes < byteCap) {
		byteCap = b.opts.BudgetBytes
	}
	cut := func() Batch {
		n, sz := 0, int64(0)
		for n < len(pending) && n < b.opts.MaxBatchFiles {
			if n > 0 && byteCap > 0 && sz+pending[n].Size > byteCap {
				break
			}
			sz += pending[n].Size
			n++
		}
		return Batch{Seq: seq + 1, Files: pending[:n:n], Bytes: sz}
	}

	for {
		// A batch is ready when thresholds are met, the linger expired, or
		// the source closed; it is sendable when the budget allows.
		var outC chan Batch
		var next Batch
		if len(pending) > 0 {
			full := len(pending) >= b.opts.MaxBatchFiles ||
				(b.opts.MaxBatchBytes > 0 && bytes >= b.opts.MaxBatchBytes)
			if full || expired || closed {
				candidate := cut()
				if b.opts.BudgetBytes <= 0 || inFlight == 0 || inFlight+candidate.Bytes <= b.opts.BudgetBytes {
					next = candidate
					outC = b.out
				}
			}
		} else if closed {
			return
		}

		select {
		case ev, ok := <-events:
			if !ok {
				closed = true
				events = nil
				stopLinger()
				continue
			}
			pending = append(pending, ev)
			bytes += ev.Size
			resetLinger()
		case <-lingerC:
			expired = true
			lingerC = nil
		case n := <-b.release:
			inFlight -= n
		case outC <- next:
			seq++
			pending = pending[len(next.Files):]
			bytes -= next.Bytes
			inFlight += next.Bytes
			if len(pending) == 0 {
				expired = false
				stopLinger()
			}
			b.mu.Lock()
			b.stats.Batches++
			b.stats.Files += len(next.Files)
			b.stats.Bytes += next.Bytes
			if inFlight > b.stats.MaxInFlightBytes {
				b.stats.MaxInFlightBytes = inFlight
			}
			b.mu.Unlock()
		case <-b.stop:
			return
		}
	}
}
