package watcher

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// feed returns an event channel the test writes by hand, standing in for
// Watcher.Events so batching is fully deterministic.
func feed(events ...Event) chan Event {
	ch := make(chan Event, len(events)+16)
	for _, e := range events {
		ch <- e
	}
	return ch
}

func ev(name string, size int64) Event {
	return Event{Path: name, Size: size, ModTime: time.Unix(0, 0)}
}

func recvBatch(t *testing.T, b *Batcher, timeout time.Duration) Batch {
	t.Helper()
	select {
	case batch, ok := <-b.Batches():
		if !ok {
			t.Fatal("batches channel closed early")
		}
		return batch
	case <-time.After(timeout):
		t.Fatal("timed out waiting for batch")
	}
	return Batch{}
}

func noBatch(t *testing.T, b *Batcher, wait time.Duration) {
	t.Helper()
	select {
	case batch := <-b.Batches():
		t.Fatalf("unexpected batch: %+v", batch)
	case <-time.After(wait):
	}
}

// TestBatcherCoalescesByCount: a burst larger than MaxBatchFiles splits
// into full batches plus a linger-flushed tail, in settle order.
func TestBatcherCoalescesByCount(t *testing.T) {
	ch := feed()
	for i := 0; i < 7; i++ {
		ch <- ev(fmt.Sprintf("f%d", i), 100)
	}
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 3, Linger: 20 * time.Millisecond})
	defer b.Stop()

	first := recvBatch(t, b, 2*time.Second)
	if len(first.Files) != 3 || first.Bytes != 300 || first.Seq != 1 {
		t.Fatalf("first batch = %+v", first)
	}
	if first.Files[0].Path != "f0" || first.Files[2].Path != "f2" {
		t.Errorf("order not preserved: %+v", first.Files)
	}
	second := recvBatch(t, b, 2*time.Second)
	if len(second.Files) != 3 || second.Seq != 2 {
		t.Fatalf("second batch = %+v", second)
	}
	// The seventh file is below threshold; the linger must flush it.
	tail := recvBatch(t, b, 2*time.Second)
	if len(tail.Files) != 1 || tail.Files[0].Path != "f6" {
		t.Fatalf("tail batch = %+v", tail)
	}
}

// TestBatcherCoalescesByBytes: the byte cap closes a batch even when the
// file cap has room.
func TestBatcherCoalescesByBytes(t *testing.T) {
	ch := feed(ev("a", 600), ev("b", 600), ev("c", 100))
	close(ch)
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 100, MaxBatchBytes: 1000, Linger: time.Hour})
	first := recvBatch(t, b, 2*time.Second)
	if len(first.Files) != 1 || first.Files[0].Path != "a" {
		t.Fatalf("first batch = %+v (600+600 exceeds the 1000-byte cap)", first)
	}
	second := recvBatch(t, b, 2*time.Second)
	if len(second.Files) != 2 || second.Bytes != 700 {
		t.Fatalf("second batch = %+v", second)
	}
}

// TestBatcherOversizedFileStillTravels: one file above MaxBatchBytes is
// emitted as a batch of one rather than wedging the pipeline.
func TestBatcherOversizedFileStillTravels(t *testing.T) {
	ch := feed(ev("huge", 10_000))
	close(ch)
	b := NewBatcher(ch, BatchOptions{MaxBatchBytes: 1000, Linger: time.Hour})
	batch := recvBatch(t, b, 2*time.Second)
	if len(batch.Files) != 1 || batch.Bytes != 10_000 {
		t.Fatalf("batch = %+v", batch)
	}
}

// TestBatcherBackpressure: with a bytes-in-flight budget, the second
// batch is withheld until the first is acknowledged via Done.
func TestBatcherBackpressure(t *testing.T) {
	ch := feed(ev("a", 800), ev("b", 800))
	close(ch)
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 1, BudgetBytes: 1000, Linger: time.Hour})
	first := recvBatch(t, b, 2*time.Second)
	if first.Files[0].Path != "a" {
		t.Fatalf("first batch = %+v", first)
	}
	// 800 in flight; another 800 would blow the 1000-byte budget.
	noBatch(t, b, 50*time.Millisecond)
	b.Done(first)
	second := recvBatch(t, b, 2*time.Second)
	if second.Files[0].Path != "b" {
		t.Fatalf("second batch = %+v", second)
	}
	b.Done(second)
	if st := b.Stats(); st.Batches != 2 || st.Files != 2 || st.MaxInFlightBytes != 800 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBatcherFlushesOnClose: closing the event source flushes whatever is
// pending and closes the batch channel.
func TestBatcherFlushesOnClose(t *testing.T) {
	ch := feed(ev("a", 1), ev("b", 2))
	close(ch)
	b := NewBatcher(ch, BatchOptions{Linger: time.Hour})
	batch := recvBatch(t, b, 2*time.Second)
	if len(batch.Files) != 2 || batch.Bytes != 3 {
		t.Fatalf("batch = %+v", batch)
	}
	if _, ok := <-b.Batches(); ok {
		t.Error("batches channel not closed after source close")
	}
}

// TestBatcherLingerHoldsForBurst: events arriving within the linger
// window join one batch instead of going out one by one.
func TestBatcherLingerHoldsForBurst(t *testing.T) {
	ch := feed()
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 100, Linger: 150 * time.Millisecond})
	defer b.Stop()
	for i := 0; i < 4; i++ {
		ch <- ev(fmt.Sprintf("burst-%d", i), 10)
		time.Sleep(5 * time.Millisecond)
	}
	batch := recvBatch(t, b, 2*time.Second)
	if len(batch.Files) != 4 {
		t.Fatalf("burst split: %+v", batch)
	}
}

// TestBatcherConcurrentDone hammers emission against concurrent Done
// calls (run under -race in CI).
func TestBatcherConcurrentDone(t *testing.T) {
	ch := make(chan Event, 256)
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 4, BudgetBytes: 500, Linger: 5 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for batch := range b.Batches() {
			go b.Done(batch)
		}
	}()
	for i := 0; i < 200; i++ {
		ch <- ev(fmt.Sprintf("f%d", i), int64(i%97))
	}
	close(ch)
	wg.Wait()
	if st := b.Stats(); st.Files != 200 {
		t.Errorf("files batched = %d, want 200", st.Files)
	}
}

// TestBatcherBudgetCapsBatchSize: the in-flight budget also bounds how
// large a multi-file batch may be cut — a burst bigger than the budget
// goes out in budget-sized pieces, not as one over-budget batch.
func TestBatcherBudgetCapsBatchSize(t *testing.T) {
	ch := feed(ev("a", 400), ev("b", 400), ev("c", 400))
	close(ch)
	b := NewBatcher(ch, BatchOptions{MaxBatchFiles: 100, BudgetBytes: 1000, Linger: time.Hour})
	first := recvBatch(t, b, 2*time.Second)
	if len(first.Files) != 2 || first.Bytes != 800 {
		t.Fatalf("first batch = %+v (3×400 exceeds the 1000-byte budget)", first)
	}
	b.Done(first)
	second := recvBatch(t, b, 2*time.Second)
	if len(second.Files) != 1 || second.Files[0].Path != "c" {
		t.Fatalf("second batch = %+v", second)
	}
	b.Done(second)
	if st := b.Stats(); st.MaxInFlightBytes > 1000 {
		t.Errorf("in-flight high-water %d exceeded the 1000-byte budget", st.MaxInFlightBytes)
	}
}
