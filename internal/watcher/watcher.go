// Package watcher triggers flows when the instrument writes new files,
// playing the role of the paper's cross-platform watchdog-based trigger
// application. It is a polling directory watcher (stdlib-only, hence
// trivially portable across the paper's Windows 10 / macOS / Linux user
// machines) with two behaviors the paper calls out explicitly: files are
// only announced once their size has been stable for several polls (the
// instrument writes multi-hundred-megabyte files, and half-written files
// must not start flows), and processed files are recorded in a checkpoint
// so that restarting the watcher after a reboot or on a subsequent day
// does not re-trigger flows for data already handled.
//
// Downstream of the raw event stream sits the Batcher, the acquisition
// side of the ingest data plane (DESIGN.md §8): settled files coalesce
// into multi-file batches — one transfer task per detector burst instead
// of one per file — and a bytes-in-flight budget applies backpressure so
// a burst cannot bury the transfer service under an unbounded backlog.
package watcher

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"picoprobe/internal/fsutil"
)

// Event announces one settled, unprocessed file.
type Event struct {
	Path    string
	Size    int64
	ModTime time.Time
}

// Options configures a Watcher.
type Options struct {
	// Interval is the poll period (default 200ms).
	Interval time.Duration
	// SettlePolls is how many consecutive polls a file's size must be
	// unchanged before it is announced (default 2).
	SettlePolls int
	// Pattern, when non-empty, is a filepath.Match glob applied to base
	// names (e.g. "*.emdg").
	Pattern string
	// CheckpointPath, when non-empty, persists the processed-file set as
	// JSON so restarts do not re-announce old files.
	CheckpointPath string
	// FS overrides the filesystem the checkpoint is read and written
	// through (nil = the real one) — the hook the torn-checkpoint tests
	// use. Directory polling always uses the real filesystem.
	FS fsutil.FS
}

// fileMark fingerprints a processed file; a changed size or mtime makes
// the file eligible again (it was rewritten).
type fileMark struct {
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// Watcher polls one directory and emits events for new settled files.
type Watcher struct {
	dir  string
	opts Options

	mu        sync.Mutex
	processed map[string]fileMark
	pending   map[string]*pendingFile
	saveErr   error

	events chan Event
	stop   chan struct{}
	done   chan struct{}
}

type pendingFile struct {
	lastSize int64
	stable   int
}

// New creates a watcher over dir, loading the checkpoint if one exists.
func New(dir string, opts Options) (*Watcher, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("watcher: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("watcher: %s is not a directory", dir)
	}
	if opts.Interval <= 0 {
		opts.Interval = 200 * time.Millisecond
	}
	if opts.SettlePolls <= 0 {
		opts.SettlePolls = 2
	}
	if opts.Pattern != "" {
		if _, err := filepath.Match(opts.Pattern, "probe"); err != nil {
			return nil, fmt.Errorf("watcher: bad pattern %q: %w", opts.Pattern, err)
		}
	}
	if opts.FS == nil {
		opts.FS = fsutil.OS
	}
	w := &Watcher{
		dir:       dir,
		opts:      opts,
		processed: map[string]fileMark{},
		pending:   map[string]*pendingFile{},
		events:    make(chan Event, 64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if opts.CheckpointPath != "" {
		if err := w.loadCheckpoint(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Events returns the channel on which settled files are announced. The
// channel is closed after Stop.
func (w *Watcher) Events() <-chan Event { return w.events }

// Start begins polling on a background goroutine.
func (w *Watcher) Start() {
	go func() {
		defer close(w.done)
		defer close(w.events)
		ticker := time.NewTicker(w.opts.Interval)
		defer ticker.Stop()
		for {
			w.poll()
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
		}
	}()
}

// Stop halts polling and waits for the poll loop to exit.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// Processed reports how many files have been announced (including those
// recorded by a previous session's checkpoint).
func (w *Watcher) Processed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.processed)
}

// CheckpointErr reports the most recent checkpoint-save failure, nil if
// the last save succeeded. A failing checkpoint does not stop the event
// stream (the worst case is a duplicate flow after restart, which the
// flow layer tolerates), but operators must be able to see it.
func (w *Watcher) CheckpointErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saveErr
}

func (w *Watcher) poll() {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return // transient: directory may be briefly unavailable
	}
	for _, entry := range entries {
		if entry.IsDir() {
			continue
		}
		name := entry.Name()
		if w.opts.Pattern != "" {
			if ok, _ := filepath.Match(w.opts.Pattern, name); !ok {
				continue
			}
		}
		info, err := entry.Info()
		if err != nil {
			continue
		}
		path := filepath.Join(w.dir, name)

		w.mu.Lock()
		if mark, ok := w.processed[path]; ok && mark.Size == info.Size() && mark.ModTime.Equal(info.ModTime()) {
			w.mu.Unlock()
			continue
		}
		p := w.pending[path]
		if p == nil {
			p = &pendingFile{lastSize: info.Size()}
			w.pending[path] = p
			w.mu.Unlock()
			continue
		}
		if info.Size() != p.lastSize {
			p.lastSize = info.Size()
			p.stable = 0
			w.mu.Unlock()
			continue
		}
		p.stable++
		if p.stable < w.opts.SettlePolls {
			w.mu.Unlock()
			continue
		}
		// Settled: announce and mark processed.
		delete(w.pending, path)
		w.processed[path] = fileMark{Size: info.Size(), ModTime: info.ModTime()}
		w.saveCheckpointLocked()
		w.mu.Unlock()

		select {
		case w.events <- Event{Path: path, Size: info.Size(), ModTime: info.ModTime()}:
		case <-w.stop:
			return
		}
	}
}

func (w *Watcher) loadCheckpoint() error {
	raw, err := w.opts.FS.ReadFile(w.opts.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("watcher: read checkpoint: %w", err)
	}
	var processed map[string]fileMark
	if err := json.Unmarshal(raw, &processed); err != nil {
		return fmt.Errorf("watcher: corrupt checkpoint %s: %w", w.opts.CheckpointPath, err)
	}
	w.processed = processed
	return nil
}

// saveCheckpointLocked persists the processed set atomically and
// durably. Failures do not stop the event stream, but they are no longer
// swallowed: the error (including a failed rename, which previously
// vanished) is retained for CheckpointErr.
func (w *Watcher) saveCheckpointLocked() {
	if w.opts.CheckpointPath == "" {
		return
	}
	raw, err := json.MarshalIndent(w.processed, "", "  ")
	if err != nil {
		w.saveErr = fmt.Errorf("watcher: marshal checkpoint: %w", err)
		return
	}
	w.saveErr = fsutil.WriteFileAtomicFS(w.opts.FS, w.opts.CheckpointPath, raw, 0o644)
}
