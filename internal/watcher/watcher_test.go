package watcher

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"picoprobe/internal/fsutil"
)

func fastOpts() Options {
	return Options{Interval: 5 * time.Millisecond, SettlePolls: 2}
}

func collect(t *testing.T, w *Watcher, n int, timeout time.Duration) []Event {
	t.Helper()
	var out []Event
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case e, ok := <-w.Events():
			if !ok {
				return out
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timed out with %d of %d events", len(out), n)
		}
	}
	return out
}

func TestDetectsNewFile(t *testing.T) {
	dir := t.TempDir()
	w, err := New(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	path := filepath.Join(dir, "a.emdg")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	events := collect(t, w, 1, 2*time.Second)
	if events[0].Path != path || events[0].Size != 4 {
		t.Errorf("event = %+v", events[0])
	}
	if w.Processed() != 1 {
		t.Errorf("processed = %d", w.Processed())
	}
}

// TestGrowingFileSettlesFirst drives the poll loop directly instead of
// racing a ticker against file appends (the timer-based version was
// flaky under -race on loaded 1-vCPU machines): each write is followed
// by exactly one poll, so the settle counting is fully deterministic.
func TestGrowingFileSettlesFirst(t *testing.T) {
	dir := t.TempDir()
	// The interval is irrelevant — polls are issued by hand.
	w, err := New(dir, Options{Interval: time.Hour, SettlePolls: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "grow.emdg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	noEvent := func(when string) {
		t.Helper()
		select {
		case e := <-w.Events():
			t.Fatalf("premature event %s: %+v", when, e)
		default:
		}
	}
	// While the file grows, every poll sees a new size and must not
	// announce it.
	for i := 0; i < 5; i++ {
		if _, err := f.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		w.poll()
		noEvent("while growing")
	}
	f.Close()
	// Stable size: the file settles only after SettlePolls unchanged
	// polls, and not one sooner.
	for i := 0; i < 3; i++ {
		noEvent("before settle polls elapsed")
		w.poll()
	}
	select {
	case e := <-w.Events():
		if e.Size != 500 {
			t.Errorf("final size = %d, want 500", e.Size)
		}
	default:
		t.Fatal("no event after settle polls elapsed")
	}
	if w.Processed() != 1 {
		t.Errorf("processed = %d", w.Processed())
	}
}

func TestPatternFiltering(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.Pattern = "*.emdg"
	w, err := New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	os.WriteFile(filepath.Join(dir, "skip.txt"), []byte("no"), 0o644)
	os.WriteFile(filepath.Join(dir, "take.emdg"), []byte("yes"), 0o644)
	events := collect(t, w, 1, 2*time.Second)
	if filepath.Base(events[0].Path) != "take.emdg" {
		t.Errorf("event = %+v", events[0])
	}
	select {
	case e := <-w.Events():
		t.Fatalf("unexpected second event: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubdirectoriesIgnored(t *testing.T) {
	dir := t.TempDir()
	os.Mkdir(filepath.Join(dir, "sub"), 0o755)
	w, _ := New(dir, fastOpts())
	w.Start()
	defer w.Stop()
	select {
	case e := <-w.Events():
		t.Fatalf("event for directory: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCheckpointPreventsReprocessing(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(t.TempDir(), "watch.json")
	opts := fastOpts()
	opts.CheckpointPath = cp

	w1, err := New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w1.Start()
	os.WriteFile(filepath.Join(dir, "a.emdg"), []byte("data"), 0o644)
	collect(t, w1, 1, 2*time.Second)
	w1.Stop()

	// "Reboot": a fresh watcher with the same checkpoint must not
	// re-announce the file, but must announce a genuinely new one.
	w2, err := New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Processed() != 1 {
		t.Fatalf("restored processed = %d", w2.Processed())
	}
	w2.Start()
	defer w2.Stop()
	os.WriteFile(filepath.Join(dir, "b.emdg"), []byte("fresh"), 0o644)
	events := collect(t, w2, 1, 2*time.Second)
	if filepath.Base(events[0].Path) != "b.emdg" {
		t.Errorf("re-announced old file: %+v", events[0])
	}
}

func TestRewrittenFileReannounced(t *testing.T) {
	dir := t.TempDir()
	w, _ := New(dir, fastOpts())
	w.Start()
	defer w.Stop()
	path := filepath.Join(dir, "a.emdg")
	os.WriteFile(path, []byte("v1"), 0o644)
	collect(t, w, 1, 2*time.Second)
	// Rewrite with different content size: should fire again.
	os.WriteFile(path, []byte("version-2"), 0o644)
	events := collect(t, w, 1, 2*time.Second)
	if events[0].Size != 9 {
		t.Errorf("rewrite event = %+v", events[0])
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(filepath.Join(t.TempDir(), "missing"), fastOpts()); err == nil {
		t.Error("missing dir accepted")
	}
	file := filepath.Join(t.TempDir(), "f")
	os.WriteFile(file, []byte("x"), 0o644)
	if _, err := New(file, fastOpts()); err == nil {
		t.Error("non-directory accepted")
	}
	opts := fastOpts()
	opts.Pattern = "[" // invalid glob
	if _, err := New(t.TempDir(), opts); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(cp, []byte("{corrupt"), 0o644)
	opts := fastOpts()
	opts.CheckpointPath = cp
	if _, err := New(t.TempDir(), opts); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestStopIdempotent(t *testing.T) {
	w, _ := New(t.TempDir(), fastOpts())
	w.Start()
	w.Stop()
	w.Stop() // second stop must not panic
}

// A checkpoint save failure (injected at the filesystem) must not stop
// the event stream, but it must surface through CheckpointErr — before
// this hook the failed rename vanished and operators could not tell the
// processed-file set was no longer being persisted.
func TestCheckpointSaveFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "cp.json")
	opts.FS = &fsutil.FaultFS{FailWriteAt: 1}
	w, err := New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	if err := os.WriteFile(filepath.Join(dir, "a.emdg"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	collect(t, w, 1, 2*time.Second)
	if w.CheckpointErr() == nil {
		t.Error("checkpoint save failure not surfaced")
	}

	// The next save (fault is one-shot) succeeds and clears the error.
	if err := os.WriteFile(filepath.Join(dir, "b.emdg"), []byte("data2"), 0o644); err != nil {
		t.Fatal(err)
	}
	collect(t, w, 1, 2*time.Second)
	if err := w.CheckpointErr(); err != nil {
		t.Errorf("checkpoint error not cleared after good save: %v", err)
	}
}

// A watcher checkpoint torn by a crash mid-write must be rejected at
// startup (loud error), never treated as an empty processed set — that
// would re-trigger flows for every file in the directory.
func TestTornWatcherCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	opts := fastOpts()
	opts.CheckpointPath = cpPath
	w, err := New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := os.WriteFile(filepath.Join(dir, "a.emdg"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	collect(t, w, 1, 2*time.Second)
	w.Stop()

	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(cpPath, int64(len(raw)/2)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dir, opts); err == nil {
		t.Fatal("torn checkpoint accepted silently")
	}
}
