// Package stats provides the small statistical toolkit used throughout the
// repository: streaming summaries with exact percentiles, histograms, and
// human-readable formatting for byte counts and data rates. The experiment
// harness uses it to compute the aggregate and per-stage rows reported in
// the paper's Table 1 and Figure 4.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates float64 samples and reports order statistics. Samples
// are retained so percentiles are exact, which is appropriate for the
// experiment scales in this repository (at most a few thousand flow runs).
type Summary struct {
	samples []float64
	sum     float64
	sumSq   float64
	sorted  bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{} }

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.samples = append(s.samples, x)
	s.sum += x
	s.sumSq += x * x
	s.sorted = false
}

// AddDuration records a duration sample in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Std returns the population standard deviation, or 0 with fewer than two
// samples.
func (s *Summary) Std() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/n - m*m
	if v < 0 { // guard against floating-point cancellation
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks, or 0 with no samples.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// Samples returns a copy of the recorded samples in insertion order is not
// guaranteed once order statistics have been computed; the copy is sorted.
func (s *Summary) Samples() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// DurationStats is a convenience view of a Summary in time.Duration units.
type DurationStats struct{ S *Summary }

// NewDurationStats returns an empty duration summary.
func NewDurationStats() DurationStats { return DurationStats{S: NewSummary()} }

// Add records one duration sample.
func (d DurationStats) Add(v time.Duration) { d.S.AddDuration(v) }

// Count returns the number of samples.
func (d DurationStats) Count() int { return d.S.Count() }

// Min returns the smallest duration.
func (d DurationStats) Min() time.Duration { return secsToDur(d.S.Min()) }

// Max returns the largest duration.
func (d DurationStats) Max() time.Duration { return secsToDur(d.S.Max()) }

// Mean returns the mean duration.
func (d DurationStats) Mean() time.Duration { return secsToDur(d.S.Mean()) }

// Median returns the median duration.
func (d DurationStats) Median() time.Duration { return secsToDur(d.S.Median()) }

// Percentile returns the p-th percentile duration.
func (d DurationStats) Percentile(p float64) time.Duration {
	return secsToDur(d.S.Percentile(p))
}

// Sum returns the total of all samples.
func (d DurationStats) Sum() time.Duration { return secsToDur(d.S.Sum()) }

func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Histogram counts samples into equal-width bins over [min, max); samples
// outside the range are clamped into the edge bins.
type Histogram struct {
	Min, Max float64
	Bins     []int
}

// NewHistogram returns a histogram with n bins spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Bins)
	idx := int((x - h.Min) / (h.Max - h.Min) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Bins[idx]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Bar renders a single-line ASCII bar chart of the histogram, width chars
// for the fullest bin.
func (h *Histogram) Bar(width int) string {
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return ""
	}
	out := ""
	for _, b := range h.Bins {
		n := b * width / max
		for i := 0; i < n; i++ {
			out += "#"
		}
		out += "|"
	}
	return out
}

// FormatBytes renders a byte count in binary units ("1.2 GiB") below 1 KB it
// uses plain bytes.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatRate renders a data rate in decimal bits per second ("940 Mbit/s").
func FormatRate(bitsPerSec float64) string {
	switch {
	case bitsPerSec >= 1e12:
		return fmt.Sprintf("%.2f Tbit/s", bitsPerSec/1e12)
	case bitsPerSec >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", bitsPerSec/1e9)
	case bitsPerSec >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", bitsPerSec/1e6)
	case bitsPerSec >= 1e3:
		return fmt.Sprintf("%.2f kbit/s", bitsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", bitsPerSec)
	}
}
