package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Errorf("Median = %v", s.Median())
	}
	if s.Sum() != 15 {
		t.Errorf("Sum = %v", s.Sum())
	}
	wantStd := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std()-wantStd) > 1e-9 {
		t.Errorf("Std = %v, want %v", s.Std(), wantStd)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Std() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Percentile(50); got != 25 {
		t.Errorf("P50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Errorf("P100 = %v, want 40", got)
	}
	if got := s.Percentile(25); got != 17.5 {
		t.Errorf("P25 = %v, want 17.5", got)
	}
}

func TestAddAfterSortedQuery(t *testing.T) {
	s := NewSummary()
	s.Add(3)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(2)
	if s.Median() != 2 {
		t.Errorf("Median after interleaved Add = %v, want 2", s.Median())
	}
}

// Property: median and percentiles agree with a brute-force sorted
// computation, and min <= p25 <= median <= p75 <= max.
func TestPropertyPercentilesAgainstBruteForce(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSummary()
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
			s.Add(float64(r))
		}
		sort.Float64s(vals)
		if s.Min() != vals[0] || s.Max() != vals[len(vals)-1] {
			return false
		}
		p25, p50, p75 := s.Percentile(25), s.Percentile(50), s.Percentile(75)
		return s.Min() <= p25 && p25 <= p50 && p50 <= p75 && p75 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Std is invariant under shifting and scales with |c| under
// scaling (within floating-point tolerance).
func TestPropertyStdShiftInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a, b := NewSummary(), NewSummary()
		shift := rng.Float64()*100 - 50
		for i := 0; i < 100; i++ {
			v := rng.Float64() * 10
			a.Add(v)
			b.Add(v + shift)
		}
		if math.Abs(a.Std()-b.Std()) > 1e-6 {
			t.Fatalf("Std not shift invariant: %v vs %v", a.Std(), b.Std())
		}
	}
}

func TestDurationStats(t *testing.T) {
	d := NewDurationStats()
	d.Add(1 * time.Second)
	d.Add(3 * time.Second)
	if d.Mean() != 2*time.Second {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Min() != time.Second || d.Max() != 3*time.Second {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.Sum() != 4*time.Second {
		t.Errorf("Sum = %v", d.Sum())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1, 2.5, 9.99, 15, -3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bins[0] != 3 { // 0, 1, and clamped -3
		t.Errorf("Bins[0] = %d, want 3", h.Bins[0])
	}
	if h.Bins[4] != 2 { // 9.99 and clamped 15
		t.Errorf("Bins[4] = %d, want 2", h.Bins[4])
	}
	if h.Bar(10) == "" {
		t.Error("Bar returned empty for non-empty histogram")
	}
}

func TestHistogramInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with max<=min should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:                "0 B",
		512:              "512 B",
		1024:             "1.00 KiB",
		91 * 1000 * 1000: "86.78 MiB",
		1 << 30:          "1.00 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		500:    "500 bit/s",
		1e3:    "1.00 kbit/s",
		1e9:    "1.00 Gbit/s",
		6.5e11: "650.00 Gbit/s",
		2e12:   "2.00 Tbit/s",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", in, got, want)
		}
	}
}
