// Package scheduler models the batch scheduler behind one compute
// endpoint (PBS on Polaris in the paper). Jobs queue for a bounded pool of
// nodes; cold nodes pay a provisioning delay (the PBS queue wait plus node
// startup), the first job of each software environment on a node
// additionally pays an environment cache warm-up (the paper's "cache the
// Python libraries required for analysis"), and idle nodes are reclaimed
// after a timeout. Subsequent jobs reuse warm nodes — the mechanism behind
// the paper's observation that maximum flow runtimes belong to the first
// flows while later flows reuse provisioned nodes. Stats exposes live pool
// gauges and EstimateWait predicts the queue wait of the next submission,
// the numbers the facility federation layer (internal/facility) uses for
// queue-wait-aware placement across endpoints.
//
// The scheduler is written against sim.Runtime, so the identical logic
// runs in simulated experiments (virtual time) and live deployments
// (scaled real time).
package scheduler

import (
	"fmt"
	"sync"
	"time"

	"picoprobe/internal/sim"
	"picoprobe/internal/stats"
)

// Config sizes the node pool and its delays.
type Config struct {
	// Nodes is the maximum number of nodes the endpoint may hold.
	Nodes int
	// ProvisionDelay is the time to acquire a cold node (queue wait +
	// boot).
	ProvisionDelay time.Duration
	// CacheWarmup is paid by the first job of each environment on a node.
	CacheWarmup time.Duration
	// IdleTimeout releases nodes that stay idle this long (0 = never).
	IdleTimeout time.Duration
	// ReuseNodes keeps nodes warm between jobs; disabling it releases the
	// node after every job, so each job pays the provisioning delay (an
	// ablation for the warm-node-reuse design choice).
	ReuseNodes bool
}

// JobReport describes one completed job.
type JobReport struct {
	NodeID   int
	Queued   time.Time
	Started  time.Time // when execution (incl. warmup) began on a node
	Finished time.Time
	// Warmed reports whether the job paid the environment cache warm-up.
	Warmed bool
	// Provisioned reports whether the job waited for a cold node to be
	// provisioned on its behalf.
	Provisioned bool
}

// QueueWait returns how long the job waited for a node.
func (r JobReport) QueueWait() time.Duration { return r.Started.Sub(r.Queued) }

// Stats aggregates scheduler activity: cumulative counters plus live pool
// gauges snapshotted at the moment of the call. The gauges are what the
// federation layer's placement policy consumes.
type Stats struct {
	// Cumulative counters.
	JobsRun    int
	Provisions int
	Warmups    int
	// Live gauges (state at snapshot time).
	Queued       int // jobs waiting for a node
	Busy         int // nodes executing a job
	Idle         int // warm nodes ready for work
	Cold         int // released nodes that would pay the provision delay
	Provisioning int // nodes currently being provisioned
}

type nodeState int

const (
	nodeCold nodeState = iota
	nodeProvisioning
	nodeIdle
	nodeBusy
)

type node struct {
	id        int
	state     nodeState
	warmed    map[string]bool
	idleGen   int // invalidates stale idle-timeout callbacks
	provision bool
	// busyUntil / readyAt are the known future instants at which a busy
	// node finishes its job or a provisioning node comes up; EstimateWait
	// replays dispatch against them.
	busyUntil time.Time
	readyAt   time.Time
}

type job struct {
	env    string
	dur    time.Duration
	queued time.Time
	done   func(JobReport)
}

// Scheduler is a deterministic batch scheduler over a bounded node pool.
type Scheduler struct {
	mu    sync.Mutex
	rt    sim.Runtime
	cfg   Config
	nodes []*node
	queue []*job
	stats Stats
	waits stats.DurationStats
}

// New returns a scheduler with the given pool configuration.
func New(rt sim.Runtime, cfg Config) *Scheduler {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	s := &Scheduler{rt: rt, cfg: cfg, waits: stats.NewDurationStats()}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &node{id: i, state: nodeCold, warmed: map[string]bool{}})
	}
	return s
}

// Stats returns a snapshot of the aggregate counters and live pool gauges.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = len(s.queue)
	for _, n := range s.nodes {
		switch n.state {
		case nodeBusy:
			st.Busy++
		case nodeIdle:
			st.Idle++
		case nodeCold:
			st.Cold++
		case nodeProvisioning:
			st.Provisioning++
		}
	}
	return st
}

// QueueWaits returns the accumulated queue-wait distribution of completed
// jobs (one sample per job, recorded at completion). The returned summary
// is a private copy: callers may compute order statistics concurrently
// without racing the scheduler (or each other — Summary sorts in place).
func (s *Scheduler) QueueWaits() stats.DurationStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := stats.NewDurationStats()
	for _, v := range s.waits.S.Samples() {
		out.S.Add(v)
	}
	return out
}

// EstimateWait predicts how long a job submitted at this instant would
// wait for a node, by deterministically replaying dispatch over the known
// pool state: idle nodes are free now, busy nodes free up when their
// current job (including warm-up) completes, provisioning nodes come up at
// their provision deadline, and cold nodes could be provisioned
// immediately. Queued jobs are assigned FIFO to the earliest-available
// node first, exactly as dispatch will assign them. With node reuse
// disabled the estimate additionally charges the provision delay and the
// environment re-warm a released (cold, wiped) node pays before its next
// job. The estimate is exact under the simulation kernel as long as no
// new submissions arrive first.
func (s *Scheduler) EstimateWait() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.rt.Now()
	type slot struct {
		at     time.Time
		warmed map[string]bool
	}
	avail := make([]slot, 0, len(s.nodes))
	for _, n := range s.nodes {
		switch n.state {
		case nodeIdle:
			avail = append(avail, slot{at: now, warmed: n.warmed})
		case nodeBusy:
			at := n.busyUntil
			warmed := n.warmed
			if !s.cfg.ReuseNodes {
				// The node is released cold after its job: the next start
				// pays a fresh provision and the warm set is wiped.
				at = at.Add(s.cfg.ProvisionDelay)
				warmed = nil
			}
			avail = append(avail, slot{at: at, warmed: warmed})
		case nodeProvisioning:
			avail = append(avail, slot{at: n.readyAt})
		case nodeCold:
			avail = append(avail, slot{at: now.Add(s.cfg.ProvisionDelay)})
		}
	}
	earliest := func() int {
		best := 0
		for i := 1; i < len(avail); i++ {
			if avail[i].at.Before(avail[best].at) {
				best = i
			}
		}
		return best
	}
	for _, j := range s.queue {
		i := earliest()
		start := avail[i].at
		if start.Before(now) {
			start = now
		}
		occupied := j.dur
		if !avail[i].warmed[j.env] {
			occupied += s.cfg.CacheWarmup
			// Copy-on-write: never mutate the live node's warm set.
			warmed := make(map[string]bool, len(avail[i].warmed)+1)
			for k := range avail[i].warmed {
				warmed[k] = true
			}
			warmed[j.env] = true
			avail[i].warmed = warmed
		}
		end := start.Add(occupied)
		if !s.cfg.ReuseNodes {
			end = end.Add(s.cfg.ProvisionDelay)
			avail[i].warmed = nil
		}
		avail[i].at = end
	}
	wait := avail[earliest()].at.Sub(now)
	if wait < 0 {
		wait = 0
	}
	return wait
}

// QueueLen returns the number of jobs waiting for a node.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Submit enqueues a job that will occupy a node for dur (plus any cache
// warm-up) in environment env, then invoke done exactly once with its
// report. Submit never blocks.
func (s *Scheduler) Submit(env string, dur time.Duration, done func(JobReport)) error {
	if done == nil {
		return fmt.Errorf("scheduler: nil completion callback")
	}
	if dur < 0 {
		return fmt.Errorf("scheduler: negative duration")
	}
	s.mu.Lock()
	s.queue = append(s.queue, &job{env: env, dur: dur, queued: s.rt.Now(), done: done})
	s.dispatchLocked()
	s.mu.Unlock()
	return nil
}

// dispatchLocked assigns queued jobs to idle nodes and provisions cold
// nodes when demand exceeds warm capacity.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		n := s.findLocked(nodeIdle)
		if n == nil {
			break
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.runLocked(n, j)
	}
	// Provision cold nodes for remaining demand.
	for demand := len(s.queue); demand > 0; demand-- {
		n := s.findLocked(nodeCold)
		if n == nil {
			break
		}
		n.state = nodeProvisioning
		n.readyAt = s.rt.Now().Add(s.cfg.ProvisionDelay)
		s.stats.Provisions++
		node := n
		s.rt.AfterFunc(s.cfg.ProvisionDelay, func() {
			s.mu.Lock()
			node.state = nodeIdle
			node.warmed = map[string]bool{}
			node.provision = true
			s.dispatchLocked()
			s.mu.Unlock()
		})
	}
}

func (s *Scheduler) findLocked(st nodeState) *node {
	for _, n := range s.nodes {
		if n.state == st {
			return n
		}
	}
	return nil
}

func (s *Scheduler) runLocked(n *node, j *job) {
	n.state = nodeBusy
	total := j.dur
	warmed := false
	if !n.warmed[j.env] {
		total += s.cfg.CacheWarmup
		n.warmed[j.env] = true
		warmed = true
		s.stats.Warmups++
	}
	provisioned := n.provision
	n.provision = false
	started := s.rt.Now()
	n.busyUntil = started.Add(total)
	s.rt.AfterFunc(total, func() {
		s.mu.Lock()
		s.stats.JobsRun++
		report := JobReport{
			NodeID:      n.id,
			Queued:      j.queued,
			Started:     started,
			Finished:    s.rt.Now(),
			Warmed:      warmed,
			Provisioned: provisioned,
		}
		s.waits.Add(report.QueueWait())
		if s.cfg.ReuseNodes {
			n.state = nodeIdle
			n.idleGen++
			gen := n.idleGen
			if s.cfg.IdleTimeout > 0 {
				s.rt.AfterFunc(s.cfg.IdleTimeout, func() {
					s.mu.Lock()
					if n.state == nodeIdle && n.idleGen == gen {
						n.state = nodeCold
						n.warmed = map[string]bool{}
					}
					s.mu.Unlock()
				})
			}
		} else {
			n.state = nodeCold
			n.warmed = map[string]bool{}
		}
		s.dispatchLocked()
		done := j.done
		s.mu.Unlock()
		done(report)
	})
}
