// Package scheduler models the batch scheduler behind the Polaris compute
// endpoint (PBS in the paper). Jobs queue for a bounded pool of nodes;
// cold nodes pay a provisioning delay (the PBS queue wait plus node
// startup), the first job of each software environment on a node
// additionally pays an environment cache warm-up (the paper's "cache the
// Python libraries required for analysis"), and idle nodes are reclaimed
// after a timeout. Subsequent jobs reuse warm nodes — the mechanism behind
// the paper's observation that maximum flow runtimes belong to the first
// flows while later flows reuse provisioned nodes.
//
// The scheduler is written against sim.Runtime, so the identical logic
// runs in simulated experiments (virtual time) and live deployments
// (scaled real time).
package scheduler

import (
	"fmt"
	"sync"
	"time"

	"picoprobe/internal/sim"
)

// Config sizes the node pool and its delays.
type Config struct {
	// Nodes is the maximum number of nodes the endpoint may hold.
	Nodes int
	// ProvisionDelay is the time to acquire a cold node (queue wait +
	// boot).
	ProvisionDelay time.Duration
	// CacheWarmup is paid by the first job of each environment on a node.
	CacheWarmup time.Duration
	// IdleTimeout releases nodes that stay idle this long (0 = never).
	IdleTimeout time.Duration
	// ReuseNodes keeps nodes warm between jobs; disabling it releases the
	// node after every job, so each job pays the provisioning delay (an
	// ablation for the warm-node-reuse design choice).
	ReuseNodes bool
}

// JobReport describes one completed job.
type JobReport struct {
	NodeID   int
	Queued   time.Time
	Started  time.Time // when execution (incl. warmup) began on a node
	Finished time.Time
	// Warmed reports whether the job paid the environment cache warm-up.
	Warmed bool
	// Provisioned reports whether the job waited for a cold node to be
	// provisioned on its behalf.
	Provisioned bool
}

// QueueWait returns how long the job waited for a node.
func (r JobReport) QueueWait() time.Duration { return r.Started.Sub(r.Queued) }

// Stats aggregates scheduler activity.
type Stats struct {
	JobsRun    int
	Provisions int
	Warmups    int
}

type nodeState int

const (
	nodeCold nodeState = iota
	nodeProvisioning
	nodeIdle
	nodeBusy
)

type node struct {
	id        int
	state     nodeState
	warmed    map[string]bool
	idleGen   int // invalidates stale idle-timeout callbacks
	provision bool
}

type job struct {
	env    string
	dur    time.Duration
	queued time.Time
	done   func(JobReport)
}

// Scheduler is a deterministic batch scheduler over a bounded node pool.
type Scheduler struct {
	mu    sync.Mutex
	rt    sim.Runtime
	cfg   Config
	nodes []*node
	queue []*job
	stats Stats
}

// New returns a scheduler with the given pool configuration.
func New(rt sim.Runtime, cfg Config) *Scheduler {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	s := &Scheduler{rt: rt, cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &node{id: i, state: nodeCold, warmed: map[string]bool{}})
	}
	return s
}

// Stats returns a snapshot of aggregate counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QueueLen returns the number of jobs waiting for a node.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Submit enqueues a job that will occupy a node for dur (plus any cache
// warm-up) in environment env, then invoke done exactly once with its
// report. Submit never blocks.
func (s *Scheduler) Submit(env string, dur time.Duration, done func(JobReport)) error {
	if done == nil {
		return fmt.Errorf("scheduler: nil completion callback")
	}
	if dur < 0 {
		return fmt.Errorf("scheduler: negative duration")
	}
	s.mu.Lock()
	s.queue = append(s.queue, &job{env: env, dur: dur, queued: s.rt.Now(), done: done})
	s.dispatchLocked()
	s.mu.Unlock()
	return nil
}

// dispatchLocked assigns queued jobs to idle nodes and provisions cold
// nodes when demand exceeds warm capacity.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		n := s.findLocked(nodeIdle)
		if n == nil {
			break
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.runLocked(n, j)
	}
	// Provision cold nodes for remaining demand.
	for demand := len(s.queue); demand > 0; demand-- {
		n := s.findLocked(nodeCold)
		if n == nil {
			break
		}
		n.state = nodeProvisioning
		s.stats.Provisions++
		node := n
		s.rt.AfterFunc(s.cfg.ProvisionDelay, func() {
			s.mu.Lock()
			node.state = nodeIdle
			node.warmed = map[string]bool{}
			node.provision = true
			s.dispatchLocked()
			s.mu.Unlock()
		})
	}
}

func (s *Scheduler) findLocked(st nodeState) *node {
	for _, n := range s.nodes {
		if n.state == st {
			return n
		}
	}
	return nil
}

func (s *Scheduler) runLocked(n *node, j *job) {
	n.state = nodeBusy
	total := j.dur
	warmed := false
	if !n.warmed[j.env] {
		total += s.cfg.CacheWarmup
		n.warmed[j.env] = true
		warmed = true
		s.stats.Warmups++
	}
	provisioned := n.provision
	n.provision = false
	started := s.rt.Now()
	s.rt.AfterFunc(total, func() {
		s.mu.Lock()
		s.stats.JobsRun++
		report := JobReport{
			NodeID:      n.id,
			Queued:      j.queued,
			Started:     started,
			Finished:    s.rt.Now(),
			Warmed:      warmed,
			Provisioned: provisioned,
		}
		if s.cfg.ReuseNodes {
			n.state = nodeIdle
			n.idleGen++
			gen := n.idleGen
			if s.cfg.IdleTimeout > 0 {
				s.rt.AfterFunc(s.cfg.IdleTimeout, func() {
					s.mu.Lock()
					if n.state == nodeIdle && n.idleGen == gen {
						n.state = nodeCold
						n.warmed = map[string]bool{}
					}
					s.mu.Unlock()
				})
			}
		} else {
			n.state = nodeCold
			n.warmed = map[string]bool{}
		}
		s.dispatchLocked()
		done := j.done
		s.mu.Unlock()
		done(report)
	})
}
