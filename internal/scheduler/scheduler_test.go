package scheduler

import (
	"sync"
	"testing"
	"time"

	"picoprobe/internal/sim"
)

func cfg() Config {
	return Config{
		Nodes:          2,
		ProvisionDelay: 60 * time.Second,
		CacheWarmup:    30 * time.Second,
		IdleTimeout:    5 * time.Minute,
		ReuseNodes:     true,
	}
}

func TestFirstJobPaysProvisionAndWarmup(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg())
	var rep JobReport
	s.Submit("analysis", 10*time.Second, func(r JobReport) { rep = r })
	k.Run()
	if !rep.Provisioned || !rep.Warmed {
		t.Errorf("first job: provisioned=%v warmed=%v", rep.Provisioned, rep.Warmed)
	}
	// Total: 60s provision + 30s warmup + 10s run.
	if got := rep.Finished.Sub(rep.Queued); got != 100*time.Second {
		t.Errorf("elapsed = %v, want 100s", got)
	}
	if got := rep.QueueWait(); got != 60*time.Second {
		t.Errorf("queue wait = %v, want 60s", got)
	}
}

func TestSecondJobReusesWarmNode(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg())
	var first, second JobReport
	s.Submit("analysis", 10*time.Second, func(r JobReport) {
		first = r
		s.Submit("analysis", 10*time.Second, func(r2 JobReport) { second = r2 })
	})
	k.Run()
	if second.Warmed || second.Provisioned {
		t.Errorf("second job should reuse: warmed=%v provisioned=%v", second.Warmed, second.Provisioned)
	}
	if got := second.Finished.Sub(second.Queued); got != 10*time.Second {
		t.Errorf("second job elapsed = %v, want 10s", got)
	}
	if second.NodeID != first.NodeID {
		t.Errorf("second job on node %d, want %d", second.NodeID, first.NodeID)
	}
}

func TestDifferentEnvPaysWarmupOnly(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg())
	var second JobReport
	s.Submit("envA", 10*time.Second, func(JobReport) {
		s.Submit("envB", 10*time.Second, func(r JobReport) { second = r })
	})
	k.Run()
	if !second.Warmed || second.Provisioned {
		t.Errorf("cross-env job: warmed=%v provisioned=%v", second.Warmed, second.Provisioned)
	}
	if got := second.Finished.Sub(second.Queued); got != 40*time.Second {
		t.Errorf("elapsed = %v, want 40s (warmup+run)", got)
	}
}

func TestQueueingWhenPoolSaturated(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	s := New(k, c)
	var waits []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit("e", 10*time.Second, func(r JobReport) { waits = append(waits, r.QueueWait()) })
	}
	if s.QueueLen() != 3 {
		t.Errorf("initial queue = %d", s.QueueLen())
	}
	k.Run()
	if len(waits) != 3 {
		t.Fatalf("completed = %d", len(waits))
	}
	// Job 1 waits 60 (provision); job 2 waits 60+40=100; job 3 waits 150.
	want := []time.Duration{60 * time.Second, 100 * time.Second, 110 * time.Second}
	for i, w := range waits {
		if w != want[i] {
			t.Errorf("wait[%d] = %v, want %v", i, w, want[i])
		}
	}
}

func TestParallelNodes(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg()) // 2 nodes
	var finished []time.Time
	for i := 0; i < 2; i++ {
		s.Submit("e", 10*time.Second, func(r JobReport) { finished = append(finished, r.Finished) })
	}
	k.Run()
	if len(finished) != 2 {
		t.Fatal("not all jobs ran")
	}
	// Both provision in parallel and finish together at 100s.
	for _, f := range finished {
		if got := f.Sub(sim.DefaultEpoch); got != 100*time.Second {
			t.Errorf("finish = %v, want 100s", got)
		}
	}
	if s.Stats().Provisions != 2 {
		t.Errorf("provisions = %d", s.Stats().Provisions)
	}
}

func TestIdleTimeoutReleasesNode(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.IdleTimeout = time.Minute
	s := New(k, c)
	var second JobReport
	s.Submit("e", 10*time.Second, func(JobReport) {})
	k.Run()
	// Wait past the idle timeout, then submit again: node must be cold.
	k.After(2*time.Minute, func() {
		s.Submit("e", 10*time.Second, func(r JobReport) { second = r })
	})
	k.Run()
	if !second.Provisioned || !second.Warmed {
		t.Errorf("post-timeout job should re-provision: %+v", second)
	}
}

func TestIdleTimeoutCancelledByNewJob(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.IdleTimeout = time.Minute
	s := New(k, c)
	var second JobReport
	s.Submit("e", 10*time.Second, func(JobReport) {})
	// First job finishes at t=100s; the idle window closes at t=160s.
	// Submit again at t=130s, inside the window: node stays warm.
	k.After(130*time.Second, func() {
		s.Submit("e", 10*time.Second, func(r JobReport) { second = r })
	})
	k.Run()
	if second.Provisioned || second.Warmed {
		t.Errorf("within-timeout job should reuse: %+v", second)
	}
}

func TestNoReuseAblation(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.ReuseNodes = false
	s := New(k, c)
	var second JobReport
	s.Submit("e", 10*time.Second, func(JobReport) {
		s.Submit("e", 10*time.Second, func(r JobReport) { second = r })
	})
	k.Run()
	if !second.Provisioned || !second.Warmed {
		t.Errorf("no-reuse job should pay full cost: %+v", second)
	}
	if got := second.Finished.Sub(second.Queued); got != 100*time.Second {
		t.Errorf("elapsed = %v, want 100s", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg())
	if err := s.Submit("e", time.Second, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := s.Submit("e", -time.Second, func(JobReport) {}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestStatsCounts(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, cfg())
	for i := 0; i < 5; i++ {
		s.Submit("e", time.Second, func(JobReport) {})
	}
	k.Run()
	st := s.Stats()
	if st.JobsRun != 5 {
		t.Errorf("jobs = %d", st.JobsRun)
	}
	if st.Provisions == 0 || st.Warmups == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStatsGaugesUnderContention pins the live pool gauges the federation
// placement policy consumes, at several instants of a saturated timeline.
func TestStatsGaugesUnderContention(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	c.IdleTimeout = 0 // keep the node warm so the final gauges are stable
	s := New(k, c)
	for i := 0; i < 3; i++ {
		s.Submit("e", 10*time.Second, func(JobReport) {})
	}
	// t=0: all three queued, the single node provisioning on their behalf.
	st := s.Stats()
	if st.Queued != 3 || st.Provisioning != 1 || st.Busy != 0 {
		t.Errorf("t=0 gauges = %+v", st)
	}
	// t=70s: provision (60s) done, job 1 running its warmup, two queued.
	k.RunFor(70 * time.Second)
	st = s.Stats()
	if st.Queued != 2 || st.Busy != 1 || st.Provisioning != 0 {
		t.Errorf("t=70 gauges = %+v", st)
	}
	k.Run()
	st = s.Stats()
	if st.Queued != 0 || st.Busy != 0 || st.Idle != 1 || st.JobsRun != 3 {
		t.Errorf("final gauges = %+v", st)
	}
}

// TestEstimateWaitUnderContention asserts the queue-wait predictor is
// exact while jobs are queued: the estimate at each instant must equal
// the wait a job submitted at that instant actually experiences.
func TestEstimateWaitUnderContention(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	s := New(k, c)
	for i := 0; i < 3; i++ {
		s.Submit("e", 10*time.Second, func(JobReport) {})
	}
	// Replay at t=0: provision ends at 60, job 1 occupies 60..100
	// (30s warmup + 10s run), job 2 100..110, job 3 110..120.
	if got := s.EstimateWait(); got != 120*time.Second {
		t.Errorf("t=0 estimate = %v, want 120s", got)
	}
	k.RunFor(70 * time.Second)
	// t=70: job 1 busy until 100, two queued behind it.
	if got := s.EstimateWait(); got != 50*time.Second {
		t.Errorf("t=70 estimate = %v, want 50s", got)
	}
	// The estimate must match the measured wait of the next submission.
	predicted := s.EstimateWait()
	var rep JobReport
	s.Submit("e", 10*time.Second, func(r JobReport) { rep = r })
	k.Run()
	if got := rep.QueueWait(); got != predicted {
		t.Errorf("measured wait %v != predicted %v", got, predicted)
	}
}

func TestEstimateWaitIdleAndColdNodes(t *testing.T) {
	k := sim.NewKernel()
	c := cfg() // 2 nodes
	c.IdleTimeout = 0
	s := New(k, c)
	// Warm up one node.
	s.Submit("e", 10*time.Second, func(JobReport) {})
	k.Run()
	// One idle warm node, one cold: next job starts immediately.
	if got := s.EstimateWait(); got != 0 {
		t.Errorf("idle estimate = %v, want 0", got)
	}
	// Occupy the warm node; the next job then takes whichever frees first:
	// the busy node (10s) vs a cold provision (60s).
	s.Submit("e", 10*time.Second, func(JobReport) {})
	if got := s.EstimateWait(); got != 10*time.Second {
		t.Errorf("busy-vs-cold estimate = %v, want 10s", got)
	}
	k.Run()
}

// TestEstimateWaitNoReuse pins the no-reuse replay: a released node comes
// back cold with its warm set wiped, so every subsequent start pays the
// provision delay and a fresh environment warm-up.
func TestEstimateWaitNoReuse(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	c.ReuseNodes = false
	s := New(k, c)
	s.Submit("e", 10*time.Second, func(JobReport) {})
	// Job 1 occupies 60 (provision) + 30 (warmup) + 10 = until t=100.
	k.RunFor(70 * time.Second)
	var rep JobReport
	s.Submit("e", 10*time.Second, func(r JobReport) { rep = r })
	// Job 2: node released cold at 100, re-provisioned by 160, warmup+run
	// 160..200. A third job would then wait for another provision: 260.
	if got := s.EstimateWait(); got != 190*time.Second {
		t.Errorf("no-reuse estimate = %v, want 190s", got)
	}
	predicted := s.EstimateWait()
	var rep3 JobReport
	s.Submit("e", 10*time.Second, func(r JobReport) { rep3 = r })
	k.Run()
	if got := rep.QueueWait(); got != 90*time.Second {
		t.Errorf("job 2 wait = %v, want 90s", got)
	}
	if got := rep3.QueueWait(); got != predicted {
		t.Errorf("job 3 measured wait %v != predicted %v", got, predicted)
	}
}

func TestQueueWaitDistribution(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	s := New(k, c)
	for i := 0; i < 3; i++ {
		s.Submit("e", 10*time.Second, func(JobReport) {})
	}
	k.Run()
	w := s.QueueWaits()
	if w.Count() != 3 {
		t.Fatalf("wait samples = %d", w.Count())
	}
	// Waits are 60 (provision), 100, 110 seconds (see
	// TestQueueingWhenPoolSaturated).
	if got := w.Min(); got != 60*time.Second {
		t.Errorf("min wait = %v", got)
	}
	if got := w.Max(); got != 110*time.Second {
		t.Errorf("max wait = %v", got)
	}
	if got := w.Median(); got != 100*time.Second {
		t.Errorf("median wait = %v", got)
	}
}

// TestQueueWaitsSnapshotIsPrivate: QueueWaits hands out copies, so
// concurrent readers (portal handlers computing percentiles, which sort
// in place) never race the scheduler or each other, and mutating a
// snapshot does not leak into the accumulator.
func TestQueueWaitsSnapshotIsPrivate(t *testing.T) {
	k := sim.NewKernel()
	c := cfg()
	c.Nodes = 1
	s := New(k, c)
	for i := 0; i < 3; i++ {
		s.Submit("e", 10*time.Second, func(JobReport) {})
	}
	k.Run()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := s.QueueWaits()
			_ = w.Percentile(95)
			_ = w.Max()
		}()
	}
	wg.Wait()
	w := s.QueueWaits()
	w.Add(time.Hour)
	if got := s.QueueWaits().Count(); got != 3 {
		t.Errorf("accumulator count = %d after snapshot mutation, want 3", got)
	}
}

func TestLiveRuntimeCompatibility(t *testing.T) {
	rt := sim.NewLiveRuntime(10000) // 10s virtual per real ms
	c := Config{Nodes: 1, ProvisionDelay: 10 * time.Second, CacheWarmup: 5 * time.Second, ReuseNodes: true}
	s := New(rt, c)
	done := make(chan JobReport, 1)
	s.Submit("e", 20*time.Second, func(r JobReport) { done <- r })
	select {
	case r := <-done:
		if !r.Provisioned || !r.Warmed {
			t.Errorf("live job report = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live job never completed")
	}
}
