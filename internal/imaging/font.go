package imaging

import "image"

// glyphs is a compact 5x7 bitmap font covering the characters the portal
// plots and annotation overlays need: digits, uppercase letters and basic
// punctuation. Each glyph row is a 5-bit pattern, most-significant bit
// leftmost. Lowercase input is rendered with the uppercase glyph.
var glyphs = map[rune][7]uint8{
	' ': {0, 0, 0, 0, 0, 0, 0},
	'.': {0, 0, 0, 0, 0, 0b00110, 0b00110},
	',': {0, 0, 0, 0, 0b00110, 0b00100, 0b01000},
	'-': {0, 0, 0, 0b11111, 0, 0, 0},
	'+': {0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0},
	':': {0, 0b00110, 0b00110, 0, 0b00110, 0b00110, 0},
	'%': {0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011},
	'/': {0b00001, 0b00010, 0b00010, 0b00100, 0b01000, 0b01000, 0b10000},
	'(': {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')': {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'=': {0, 0, 0b11111, 0, 0b11111, 0, 0},
	'0': {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3': {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B': {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C': {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D': {0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G': {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H': {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J': {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K': {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L': {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N': {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O': {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q': {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R': {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W': {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010},
	'X': {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y': {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
}

// GlyphWidth and GlyphHeight are the cell size of the bitmap font,
// including no inter-character spacing.
const (
	GlyphWidth  = 5
	GlyphHeight = 7
)

// TextWidth returns the pixel width of s at the given integer scale
// (including one scaled column of spacing between characters).
func TextWidth(s string, scale int) int {
	if len(s) == 0 {
		return 0
	}
	n := 0
	for range s {
		n++
	}
	return (n*(GlyphWidth+1) - 1) * scale
}

// DrawText renders s at (x, y) (top-left corner) with the given color and
// integer scale. Characters without a glyph render as space. Lowercase
// letters use the uppercase glyph.
func DrawText(img *image.RGBA, x, y int, s string, c RGB, scale int) {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		if r >= 'a' && r <= 'z' {
			r = r - 'a' + 'A'
		}
		g, ok := glyphs[r]
		if !ok {
			g = glyphs[' ']
		}
		for row := 0; row < GlyphHeight; row++ {
			bits := g[row]
			for col := 0; col < GlyphWidth; col++ {
				if bits&(1<<(GlyphWidth-1-col)) != 0 {
					fillRect(img, cx+col*scale, y+row*scale, scale, scale, c)
				}
			}
		}
		cx += (GlyphWidth + 1) * scale
	}
}

func fillRect(img *image.RGBA, x, y, w, h int, c RGB) {
	b := img.Bounds()
	x0, x1 := max(x, b.Min.X), min(x+w, b.Max.X)
	y0, y1 := max(y, b.Min.Y), min(y+h, b.Max.Y)
	if x0 >= x1 || y0 >= y1 {
		return
	}
	for yy := y0; yy < y1; yy++ {
		row := img.Pix[img.PixOffset(x0, yy):img.PixOffset(x1, yy):img.PixOffset(x1, yy)]
		for i := 0; i < len(row); i += 4 {
			row[i] = c.R
			row[i+1] = c.G
			row[i+2] = c.B
			row[i+3] = 255
		}
	}
}
