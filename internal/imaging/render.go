// Package imaging renders the visual data products the paper's portal
// displays: false-color intensity maps of hyperspectral samples (Fig 2.A),
// aggregate spectrum plots (Fig 2.B), and bounding-box annotation overlays
// for the nanoparticle tracking use case (Fig 3). Everything is built on
// the standard library image stack; PNG is the interchange format.
package imaging

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"picoprobe/internal/geom"
	"picoprobe/internal/tensor"
)

// RGB is a plain 8-bit color triple.
type RGB struct{ R, G, B uint8 }

// Colors used throughout the portal artifacts.
var (
	White  = RGB{255, 255, 255}
	Black  = RGB{0, 0, 0}
	Orange = RGB{255, 140, 0}
	Blue   = RGB{40, 90, 200}
	Gray   = RGB{128, 128, 128}
	Red    = RGB{220, 40, 40}
)

func setRGB(img *image.RGBA, x, y int, c RGB) {
	img.SetRGBA(x, y, color.RGBA{R: c.R, G: c.G, B: c.B, A: 255})
}

// Colormap maps a normalized value in [0, 1] to a color.
type Colormap func(v float64) RGB

// Grayscale is the identity colormap.
func Grayscale(v float64) RGB {
	g := uint8(math.Round(clamp01(v) * 255))
	return RGB{g, g, g}
}

// viridisAnchors are sampled from the matplotlib viridis colormap; values
// in between are linearly interpolated.
var viridisAnchors = []RGB{
	{68, 1, 84}, {71, 44, 122}, {59, 81, 139}, {44, 113, 142},
	{33, 144, 141}, {39, 173, 129}, {92, 200, 99}, {170, 220, 50}, {253, 231, 37},
}

// Viridis is a perceptually uniform false-color map.
func Viridis(v float64) RGB {
	v = clamp01(v)
	pos := v * float64(len(viridisAnchors)-1)
	i := int(pos)
	if i >= len(viridisAnchors)-1 {
		return viridisAnchors[len(viridisAnchors)-1]
	}
	frac := pos - float64(i)
	a, b := viridisAnchors[i], viridisAnchors[i+1]
	lerp := func(x, y uint8) uint8 { return uint8(float64(x) + frac*(float64(y)-float64(x))) }
	return RGB{lerp(a.R, b.R), lerp(a.G, b.G), lerp(a.B, b.B)}
}

// Heatmap renders a rank-2 tensor as an image, normalizing [min, max] of
// the data onto the colormap.
func Heatmap(d *tensor.Dense, cmap Colormap) (*image.RGBA, error) {
	if d.Rank() != 2 {
		return nil, fmt.Errorf("imaging: Heatmap needs a rank-2 tensor, got %v", d.Shape())
	}
	h, w := d.Shape()[0], d.Shape()[1]
	lo, hi := d.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			setRGB(img, x, y, cmap((d.At(y, x)-lo)/span))
		}
	}
	return img, nil
}

// GrayFrame renders pre-quantized uint8 samples (row-major h x w) as a
// grayscale image; it is the fast path used by the video conversion
// pipeline after the fp64→uint8 cast.
func GrayFrame(pixels []uint8, w, h int) (*image.Gray, error) {
	if len(pixels) != w*h {
		return nil, fmt.Errorf("imaging: %d pixels for %dx%d frame", len(pixels), w, h)
	}
	img := image.NewGray(image.Rect(0, 0, w, h))
	copy(img.Pix, pixels)
	return img, nil
}

// DrawBox outlines a box with the given color and line thickness.
func DrawBox(img *image.RGBA, b geom.Box, c RGB, thickness int) {
	if thickness < 1 {
		thickness = 1
	}
	x0, y0, x1, y1 := int(b.X0), int(b.Y0), int(b.X1), int(b.Y1)
	fillRect(img, x0, y0, x1-x0, thickness, c)           // top
	fillRect(img, x0, y1-thickness, x1-x0, thickness, c) // bottom
	fillRect(img, x0, y0, thickness, y1-y0, c)           // left
	fillRect(img, x1-thickness, y0, thickness, y1-y0, c) // right
}

// DrawLabeledBox outlines a box and renders label text just above it (or
// inside if there is no room above).
func DrawLabeledBox(img *image.RGBA, b geom.Box, label string, c RGB) {
	DrawBox(img, b, c, 1)
	y := int(b.Y0) - GlyphHeight - 2
	if y < 0 {
		y = int(b.Y0) + 2
	}
	DrawText(img, int(b.X0), y, label, c, 1)
}

// ToRGBA converts any image to RGBA for annotation.
func ToRGBA(src image.Image) *image.RGBA {
	if rgba, ok := src.(*image.RGBA); ok {
		return rgba
	}
	b := src.Bounds()
	dst := image.NewRGBA(b)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			dst.Set(x, y, src.At(x, y))
		}
	}
	return dst
}

// SavePNG writes img to path.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return fmt.Errorf("imaging: encode png: %w", err)
	}
	return f.Close()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
