// Package imaging renders the visual data products the paper's portal
// displays: false-color intensity maps of hyperspectral samples (Fig 2.A),
// aggregate spectrum plots (Fig 2.B), and bounding-box annotation overlays
// for the nanoparticle tracking use case (Fig 3). Everything is built on
// the standard library image stack; PNG is the interchange format.
package imaging

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
	"sync"

	"picoprobe/internal/geom"
	"picoprobe/internal/tensor"
)

// RGB is a plain 8-bit color triple.
type RGB struct{ R, G, B uint8 }

// Colors used throughout the portal artifacts.
var (
	White  = RGB{255, 255, 255}
	Black  = RGB{0, 0, 0}
	Orange = RGB{255, 140, 0}
	Blue   = RGB{40, 90, 200}
	Gray   = RGB{128, 128, 128}
	Red    = RGB{220, 40, 40}
)

func setRGB(img *image.RGBA, x, y int, c RGB) {
	img.SetRGBA(x, y, color.RGBA{R: c.R, G: c.G, B: c.B, A: 255})
}

// Colormap maps a normalized value in [0, 1] to a color.
type Colormap func(v float64) RGB

// Grayscale is the identity colormap.
func Grayscale(v float64) RGB {
	g := uint8(math.Round(clamp01(v) * 255))
	return RGB{g, g, g}
}

// viridisAnchors are sampled from the matplotlib viridis colormap; values
// in between are linearly interpolated.
var viridisAnchors = []RGB{
	{68, 1, 84}, {71, 44, 122}, {59, 81, 139}, {44, 113, 142},
	{33, 144, 141}, {39, 173, 129}, {92, 200, 99}, {170, 220, 50}, {253, 231, 37},
}

// Viridis is a perceptually uniform false-color map.
func Viridis(v float64) RGB {
	v = clamp01(v)
	pos := v * float64(len(viridisAnchors)-1)
	i := int(pos)
	if i >= len(viridisAnchors)-1 {
		return viridisAnchors[len(viridisAnchors)-1]
	}
	frac := pos - float64(i)
	a, b := viridisAnchors[i], viridisAnchors[i+1]
	lerp := func(x, y uint8) uint8 { return uint8(float64(x) + frac*(float64(y)-float64(x))) }
	return RGB{lerp(a.R, b.R), lerp(a.G, b.G), lerp(a.B, b.B)}
}

// Heatmap renders a rank-2 tensor as an image, normalizing [min, max] of
// the data onto the colormap.
func Heatmap(d *tensor.Dense, cmap Colormap) (*image.RGBA, error) {
	if d.Rank() != 2 {
		return nil, fmt.Errorf("imaging: Heatmap needs a rank-2 tensor, got %v", d.Shape())
	}
	h, w := d.Shape()[0], d.Shape()[1]
	lo, hi := d.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	data := d.Data()
	for i, v := range data {
		c := cmap((v - lo) / span)
		o := i * 4
		img.Pix[o] = c.R
		img.Pix[o+1] = c.G
		img.Pix[o+2] = c.B
		img.Pix[o+3] = 255
	}
	return img, nil
}

// GrayFrame renders pre-quantized uint8 samples (row-major h x w) as a
// grayscale image; it is the fast path used by the video conversion
// pipeline after the fp64→uint8 cast.
func GrayFrame(pixels []uint8, w, h int) (*image.Gray, error) {
	return GrayFrameInto(nil, pixels, w, h)
}

// GrayFrameInto is GrayFrame reusing img's storage when its dimensions
// already match (img may be nil). Streaming video pipelines pass the
// previous frame back in so per-frame rendering allocates nothing.
func GrayFrameInto(img *image.Gray, pixels []uint8, w, h int) (*image.Gray, error) {
	if len(pixels) != w*h {
		return nil, fmt.Errorf("imaging: %d pixels for %dx%d frame", len(pixels), w, h)
	}
	if img == nil || img.Rect.Dx() != w || img.Rect.Dy() != h {
		img = image.NewGray(image.Rect(0, 0, w, h))
	}
	copy(img.Pix, pixels)
	return img, nil
}

// DrawBox outlines a box with the given color and line thickness.
func DrawBox(img *image.RGBA, b geom.Box, c RGB, thickness int) {
	if thickness < 1 {
		thickness = 1
	}
	x0, y0, x1, y1 := int(b.X0), int(b.Y0), int(b.X1), int(b.Y1)
	fillRect(img, x0, y0, x1-x0, thickness, c)           // top
	fillRect(img, x0, y1-thickness, x1-x0, thickness, c) // bottom
	fillRect(img, x0, y0, thickness, y1-y0, c)           // left
	fillRect(img, x1-thickness, y0, thickness, y1-y0, c) // right
}

// DrawLabeledBox outlines a box and renders label text just above it (or
// inside if there is no room above).
func DrawLabeledBox(img *image.RGBA, b geom.Box, label string, c RGB) {
	DrawBox(img, b, c, 1)
	y := int(b.Y0) - GlyphHeight - 2
	if y < 0 {
		y = int(b.Y0) + 2
	}
	DrawText(img, int(b.X0), y, label, c, 1)
}

// ToRGBA converts any image to RGBA for annotation.
func ToRGBA(src image.Image) *image.RGBA {
	return ToRGBAInto(nil, src)
}

// ToRGBAInto converts src to RGBA, reusing dst's storage when its bounds
// already match (dst may be nil). Grayscale sources take a direct
// pixel-expansion path instead of the interface-dispatch Set/At loop.
func ToRGBAInto(dst *image.RGBA, src image.Image) *image.RGBA {
	if rgba, ok := src.(*image.RGBA); ok {
		return rgba
	}
	b := src.Bounds()
	if dst == nil || dst.Rect != b {
		dst = image.NewRGBA(b)
	}
	if gray, ok := src.(*image.Gray); ok {
		for y := b.Min.Y; y < b.Max.Y; y++ {
			srow := gray.Pix[gray.PixOffset(b.Min.X, y) : gray.PixOffset(b.Min.X, y)+b.Dx()]
			drow := dst.Pix[dst.PixOffset(b.Min.X, y) : dst.PixOffset(b.Min.X, y)+b.Dx()*4]
			for i, v := range srow {
				o := i * 4
				drow[o] = v
				drow[o+1] = v
				drow[o+2] = v
				drow[o+3] = 255
			}
		}
		return dst
	}
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			dst.Set(x, y, src.At(x, y))
		}
	}
	return dst
}

// pngEncoder trades a little artifact size for encode speed: the portal's
// intensity maps and spectrum plots sit on the fused analysis hot path, and
// default-compression deflate dominated their cost.
var pngEncoder = png.Encoder{CompressionLevel: png.BestSpeed, BufferPool: pngBuffers{}}

// pngBuffers adapts a sync.Pool to png.EncoderBufferPool so repeated
// artifact writes reuse the encoder's internal row buffers.
type pngBuffers struct{}

var pngBufferPool = sync.Pool{New: func() any { return new(png.EncoderBuffer) }}

func (pngBuffers) Get() *png.EncoderBuffer  { return pngBufferPool.Get().(*png.EncoderBuffer) }
func (pngBuffers) Put(b *png.EncoderBuffer) { pngBufferPool.Put(b) }

// EncodePNG writes img to w with the fast encoder settings.
func EncodePNG(w io.Writer, img image.Image) error {
	if rgba, ok := img.(*image.RGBA); ok {
		if pal := palettize(rgba); pal != nil {
			img = pal
		}
	}
	return pngEncoder.Encode(w, img)
}

// palettize losslessly converts an RGBA image that uses at most 256
// distinct colors (true for every rendered plot and most small heatmaps)
// to paletted form, or returns nil if the image is too colorful. Paletted
// rows are a quarter the size, which quarters the dominant PNG
// filter+deflate cost of artifact writing.
func palettize(img *image.RGBA) *image.Paletted {
	const tableSize = 1024 // power of two, ≥4× max palette for low load
	var keys [tableSize]uint32
	var idxs [tableSize]uint8
	var used [tableSize]bool
	// One backing array for the palette colors; storing *color.RGBA in the
	// interface slice avoids a boxing allocation per distinct color.
	vals := make([]color.RGBA, 0, 256)
	pal := make(color.Palette, 0, 256)
	out := image.NewPaletted(img.Rect, nil)
	w, h := img.Rect.Dx(), img.Rect.Dy()
	for y := 0; y < h; y++ {
		src := img.Pix[y*img.Stride : y*img.Stride+w*4]
		dst := out.Pix[y*out.Stride : y*out.Stride+w]
		for x := 0; x < w; x++ {
			o := x * 4
			key := uint32(src[o]) | uint32(src[o+1])<<8 | uint32(src[o+2])<<16 | uint32(src[o+3])<<24
			slot := (key * 2654435761) >> 22 % tableSize
			for used[slot] && keys[slot] != key {
				slot = (slot + 1) % tableSize
			}
			if !used[slot] {
				if len(pal) == 256 {
					return nil
				}
				used[slot] = true
				keys[slot] = key
				idxs[slot] = uint8(len(pal))
				vals = append(vals, color.RGBA{R: src[o], G: src[o+1], B: src[o+2], A: src[o+3]})
				pal = append(pal, &vals[len(vals)-1])
			}
			dst[x] = idxs[slot]
		}
	}
	out.Palette = pal
	return out
}

// SavePNG writes img to path.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := EncodePNG(bw, img); err != nil {
		f.Close()
		return fmt.Errorf("imaging: encode png: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("imaging: %w", err)
	}
	return f.Close()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
