package imaging

import (
	"image"
	"os"
	"path/filepath"
	"testing"

	"picoprobe/internal/geom"
	"picoprobe/internal/tensor"
)

func TestGrayscaleAndViridisBounds(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2} {
		g := Grayscale(v)
		if g.R != g.G || g.G != g.B {
			t.Errorf("Grayscale(%v) not gray: %+v", v, g)
		}
		_ = Viridis(v) // must not panic out of range
	}
	if Grayscale(0).R != 0 || Grayscale(1).R != 255 {
		t.Error("Grayscale endpoints wrong")
	}
	lo, hi := Viridis(0), Viridis(1)
	if lo == hi {
		t.Error("Viridis endpoints identical")
	}
}

func TestHeatmap(t *testing.T) {
	d := tensor.New(4, 6)
	d.Set(10, 2, 3)
	img, err := Heatmap(d, Grayscale)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 6 || img.Bounds().Dy() != 4 {
		t.Errorf("bounds = %v", img.Bounds())
	}
	// The hot pixel should be white, the rest black.
	r, _, _, _ := img.At(3, 2).RGBA()
	if r>>8 != 255 {
		t.Errorf("hot pixel = %d", r>>8)
	}
	r0, _, _, _ := img.At(0, 0).RGBA()
	if r0>>8 != 0 {
		t.Errorf("cold pixel = %d", r0>>8)
	}
	// Constant image should not divide by zero.
	if _, err := Heatmap(tensor.New(2, 2), Viridis); err != nil {
		t.Error(err)
	}
	// Rank check.
	if _, err := Heatmap(tensor.New(2, 2, 2), Grayscale); err == nil {
		t.Error("rank-3 heatmap should error")
	}
}

func TestGrayFrame(t *testing.T) {
	img, err := GrayFrame([]uint8{0, 128, 255, 64}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.GrayAt(1, 0).Y != 128 {
		t.Errorf("pixel = %d", img.GrayAt(1, 0).Y)
	}
	if _, err := GrayFrame([]uint8{1, 2, 3}, 2, 2); err == nil {
		t.Error("wrong pixel count should error")
	}
}

func TestDrawBoxAndText(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 64, 64))
	DrawBox(img, geom.NewBox(10, 10, 30, 30), Orange, 2)
	// Box edge pixels set.
	r, g, _, _ := img.At(10, 10).RGBA()
	if uint8(r>>8) != Orange.R || uint8(g>>8) != Orange.G {
		t.Error("box edge not drawn")
	}
	// Interior untouched.
	_, _, _, a := img.At(20, 20).RGBA()
	if a != 0 {
		t.Error("box interior should be untouched")
	}

	DrawText(img, 2, 40, "AU 0.87", White, 1)
	lit := 0
	for y := 40; y < 47; y++ {
		for x := 2; x < 2+TextWidth("AU 0.87", 1); x++ {
			if r, _, _, _ := img.At(x, y).RGBA(); r > 0 {
				lit++
			}
		}
	}
	if lit < 20 {
		t.Errorf("text rendered only %d pixels", lit)
	}
}

func TestDrawLabeledBoxNearTop(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 32, 32))
	DrawLabeledBox(img, geom.NewBox(2, 2, 20, 20), "0.9", Red) // label flips inside
	DrawLabeledBox(img, geom.NewBox(2, 15, 20, 30), "0.8", Red)
}

func TestTextWidth(t *testing.T) {
	if TextWidth("", 1) != 0 {
		t.Error("empty width should be 0")
	}
	if TextWidth("AB", 1) != 11 { // 2*(5+1)-1
		t.Errorf("width = %d", TextWidth("AB", 1))
	}
	if TextWidth("AB", 2) != 22 {
		t.Errorf("scaled width = %d", TextWidth("AB", 2))
	}
}

func TestLinePlot(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) / 5
		ys[i] = float64(i % 17)
	}
	img, err := LinePlot(PlotConfig{
		Title:  "EDS SPECTRUM",
		XLabel: "ENERGY (KEV)",
		YLabel: "COUNTS",
		Markers: []Marker{
			{X: 10, Label: "AU", Color: Red},
			{X: 500, Label: "OFFSCALE", Color: Red}, // ignored: out of range
		},
	}, Series{Label: "SUM", X: xs, Y: ys, Color: Blue})
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 640 || img.Bounds().Dy() != 360 {
		t.Errorf("bounds = %v", img.Bounds())
	}
	// Log scale should also work, including zero values.
	ys[3] = 0
	if _, err := LinePlot(PlotConfig{LogY: true}, Series{X: xs, Y: ys, Color: Blue}); err != nil {
		t.Error(err)
	}
}

func TestLinePlotErrors(t *testing.T) {
	if _, err := LinePlot(PlotConfig{}); err == nil {
		t.Error("no series should error")
	}
	if _, err := LinePlot(PlotConfig{}, Series{X: []float64{1}, Y: []float64{}}); err == nil {
		t.Error("mismatched series should error")
	}
	if _, err := LinePlot(PlotConfig{}, Series{X: nil, Y: nil}); err == nil {
		t.Error("empty series should error")
	}
	// Single-point series must not divide by zero.
	if _, err := LinePlot(PlotConfig{}, Series{X: []float64{1}, Y: []float64{2}}); err != nil {
		t.Error(err)
	}
}

func TestSavePNG(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 8, 8))
	path := filepath.Join(t.TempDir(), "out.png")
	if err := SavePNG(path, img); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 8 || string(raw[1:4]) != "PNG" {
		t.Error("output is not a PNG")
	}
	if err := SavePNG(filepath.Join(t.TempDir(), "missing", "x.png"), img); err == nil {
		t.Error("bad path should error")
	}
}

func TestToRGBA(t *testing.T) {
	g := image.NewGray(image.Rect(0, 0, 4, 4))
	g.Pix[5] = 200
	rgba := ToRGBA(g)
	r, _, _, _ := rgba.At(1, 1).RGBA()
	if uint8(r>>8) != 200 {
		t.Errorf("converted pixel = %d", r>>8)
	}
	// Already-RGBA passes through.
	if got := ToRGBA(rgba); got != rgba {
		t.Error("RGBA input should pass through")
	}
}
