package imaging

import (
	"fmt"
	"image"
	"math"
)

// Series is one labeled line in a plot.
type Series struct {
	Label string
	X, Y  []float64
	Color RGB
}

// Marker is a labeled vertical tick rendered at a specific X position,
// used to annotate identified element lines on spectrum plots.
type Marker struct {
	X     float64
	Label string
	Color RGB
}

// PlotConfig configures a line plot.
type PlotConfig struct {
	Width, Height int
	Title         string
	XLabel        string
	YLabel        string
	LogY          bool
	Markers       []Marker
}

const (
	plotMarginLeft   = 56
	plotMarginRight  = 12
	plotMarginTop    = 24
	plotMarginBottom = 34
)

// LinePlot renders one or more series into an image with axes, tick labels
// and optional markers. It is deliberately minimal — enough to reproduce
// the paper's Fig 2.B spectrum plot — but handles log scaling and
// multi-series legends.
func LinePlot(cfg PlotConfig, series ...Series) (*image.RGBA, error) {
	if cfg.Width == 0 {
		cfg.Width = 640
	}
	if cfg.Height == 0 {
		cfg.Height = 360
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("imaging: LinePlot needs at least one series")
	}
	// Data bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return nil, fmt.Errorf("imaging: series %q has %d x vs %d y", s.Label, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return nil, fmt.Errorf("imaging: series %q is empty", s.Label)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			y := s.Y[i]
			if cfg.LogY {
				y = math.Log10(math.Max(y, 1e-12))
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	img := image.NewRGBA(image.Rect(0, 0, cfg.Width, cfg.Height))
	fillRect(img, 0, 0, cfg.Width, cfg.Height, White)

	px0, py0 := plotMarginLeft, plotMarginTop
	px1, py1 := cfg.Width-plotMarginRight, cfg.Height-plotMarginBottom
	toPx := func(x float64) int {
		return px0 + int((x-xmin)/(xmax-xmin)*float64(px1-px0))
	}
	toPy := func(y float64) int {
		if cfg.LogY {
			y = math.Log10(math.Max(y, 1e-12))
		}
		return py1 - int((y-ymin)/(ymax-ymin)*float64(py1-py0))
	}

	// Axes.
	fillRect(img, px0, py1, px1-px0, 1, Black)
	fillRect(img, px0, py0, 1, py1-py0, Black)

	// X ticks: 5 evenly spaced.
	for i := 0; i <= 4; i++ {
		x := xmin + (xmax-xmin)*float64(i)/4
		px := toPx(x)
		fillRect(img, px, py1, 1, 4, Black)
		lbl := fmtTick(x)
		DrawText(img, px-TextWidth(lbl, 1)/2, py1+7, lbl, Black, 1)
	}
	// Y ticks: 4 evenly spaced (in plot units).
	for i := 0; i <= 3; i++ {
		yv := ymin + (ymax-ymin)*float64(i)/3
		py := py1 - int(float64(py1-py0)*float64(i)/3)
		fillRect(img, px0-4, py, 4, 1, Black)
		v := yv
		if cfg.LogY {
			v = math.Pow(10, yv)
		}
		lbl := fmtTick(v)
		DrawText(img, px0-6-TextWidth(lbl, 1), py-3, lbl, Black, 1)
	}

	// Series polylines.
	for _, s := range series {
		for i := 1; i < len(s.X); i++ {
			drawLine(img, toPx(s.X[i-1]), toPy(s.Y[i-1]), toPx(s.X[i]), toPy(s.Y[i]), s.Color)
		}
	}

	// Markers.
	for _, m := range cfg.Markers {
		if m.X < xmin || m.X > xmax {
			continue
		}
		px := toPx(m.X)
		for y := py0; y < py1; y += 3 { // dashed vertical line
			setRGB(img, px, y, m.Color)
		}
		DrawText(img, px-TextWidth(m.Label, 1)/2, py0+2, m.Label, m.Color, 1)
	}

	// Title, axis labels, legend.
	DrawText(img, (cfg.Width-TextWidth(cfg.Title, 1))/2, 6, cfg.Title, Black, 1)
	DrawText(img, (px0+px1)/2-TextWidth(cfg.XLabel, 1)/2, cfg.Height-12, cfg.XLabel, Black, 1)
	DrawText(img, 4, py0-12, cfg.YLabel, Black, 1)
	ly := py0 + 4
	for _, s := range series {
		if s.Label == "" {
			continue
		}
		fillRect(img, px1-70, ly+2, 10, 2, s.Color)
		DrawText(img, px1-56, ly, s.Label, Black, 1)
		ly += 10
	}
	return img, nil
}

// drawLine draws a 1px line with the integer Bresenham algorithm.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c RGB) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if image.Pt(x0, y0).In(img.Bounds()) {
			setRGB(img, x0, y0, c)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
