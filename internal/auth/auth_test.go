package auth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func TestIssueAndVerify(t *testing.T) {
	iss := NewIssuer([]byte("secret"), nil)
	tok, err := iss.Issue("brace@anl.gov", []string{ScopeTransfer, ScopeCompute}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	claims, err := iss.Verify(tok, ScopeTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if claims.Subject != "brace@anl.gov" {
		t.Errorf("subject = %q", claims.Subject)
	}
	if !claims.HasScope(ScopeCompute) || claims.HasScope(ScopeSearchIngest) {
		t.Error("scope set wrong")
	}
}

func TestMissingScopeRejected(t *testing.T) {
	iss := NewIssuer([]byte("secret"), nil)
	tok, _ := iss.Issue("user", []string{ScopeTransfer}, time.Hour)
	if _, err := iss.Verify(tok, ScopeSearchIngest); !errors.Is(err, ErrScope) {
		t.Errorf("err = %v, want ErrScope", err)
	}
	// Empty required scope means signature/expiry only.
	if _, err := iss.Verify(tok, ""); err != nil {
		t.Errorf("scope-less verify failed: %v", err)
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	now := time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC)
	clock := now
	iss := NewIssuer([]byte("secret"), func() time.Time { return clock })
	tok, _ := iss.Issue("user", []string{ScopeTransfer}, time.Minute)
	if _, err := iss.Verify(tok, ScopeTransfer); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	clock = now.Add(2 * time.Minute)
	if _, err := iss.Verify(tok, ScopeTransfer); !errors.Is(err, ErrExpired) {
		t.Errorf("err = %v, want ErrExpired", err)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	iss := NewIssuer([]byte("secret"), nil)
	tok, _ := iss.Issue("user", []string{ScopeTransfer}, time.Hour)
	body, sig, _ := strings.Cut(tok, ".")
	// Flip a payload byte.
	mutated := []byte(body)
	mutated[0] ^= 1
	if _, err := iss.Verify(string(mutated)+"."+sig, ""); !errors.Is(err, ErrSignature) {
		t.Errorf("payload tamper: err = %v", err)
	}
	// Flip a signature byte.
	mutatedSig := []byte(sig)
	mutatedSig[0] ^= 1
	if _, err := iss.Verify(body+"."+string(mutatedSig), ""); !errors.Is(err, ErrSignature) {
		t.Errorf("signature tamper: err = %v", err)
	}
}

func TestWrongIssuerRejected(t *testing.T) {
	a := NewIssuer([]byte("secret-a"), nil)
	b := NewIssuer([]byte("secret-b"), nil)
	tok, _ := a.Issue("user", nil, time.Hour)
	if _, err := b.Verify(tok, ""); !errors.Is(err, ErrSignature) {
		t.Errorf("cross-issuer verify: err = %v", err)
	}
}

func TestMalformedTokens(t *testing.T) {
	iss := NewIssuer([]byte("secret"), nil)
	for _, tok := range []string{"", "nodot", ".", "a.", ".b", "!!!.###"} {
		if _, err := iss.Verify(tok, ""); err == nil {
			t.Errorf("token %q accepted", tok)
		}
	}
}

func TestEmptySubjectRejected(t *testing.T) {
	iss := NewIssuer([]byte("secret"), nil)
	if _, err := iss.Issue("", nil, time.Hour); err == nil {
		t.Error("empty subject accepted")
	}
}

func TestEmptySecretPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty secret should panic")
		}
	}()
	NewIssuer(nil, nil)
}

// Property: any issued token verifies with its own issuer and any single
// bit flip in the token body breaks verification.
func TestPropertyRoundTripAndTamper(t *testing.T) {
	iss := NewIssuer([]byte("property-secret"), fixedClock(time.Unix(1_700_000_000, 0)))
	f := func(subject string, nScopes uint8) bool {
		if subject == "" {
			subject = "x"
		}
		scopes := make([]string, nScopes%5)
		for i := range scopes {
			scopes[i] = ScopeTransfer
		}
		tok, err := iss.Issue(subject, scopes, time.Hour)
		if err != nil {
			return false
		}
		claims, err := iss.Verify(tok, "")
		if err != nil || claims.Subject != subject {
			return false
		}
		// Tamper with one character of the payload.
		mutated := []byte(tok)
		if mutated[0] != 'A' {
			mutated[0] = 'A'
		} else {
			mutated[0] = 'B'
		}
		_, err = iss.Verify(string(mutated), "")
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
