// Package auth is the OAuth-flavoured identity layer standing in for
// Globus Auth: an issuer mints HMAC-SHA256-signed bearer tokens carrying a
// subject, scopes and an expiry, and every service in the data-flow stack
// verifies tokens and enforces scopes before acting. Secrets never leave
// the issuer; tokens are self-contained and offline-verifiable, mirroring
// how Globus services validate access tokens on each request.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Scopes used by the PicoProbe data-flow services.
const (
	ScopeTransfer     = "urn:picoprobe:transfer"
	ScopeCompute      = "urn:picoprobe:compute"
	ScopeSearchIngest = "urn:picoprobe:search.ingest"
	ScopeSearchQuery  = "urn:picoprobe:search.query"
	ScopeFlowsRun     = "urn:picoprobe:flows.run"
	ScopePortal       = "urn:picoprobe:portal"
)

// Errors returned by Verify.
var (
	ErrMalformed = errors.New("auth: malformed token")
	ErrSignature = errors.New("auth: signature mismatch")
	ErrExpired   = errors.New("auth: token expired")
	ErrScope     = errors.New("auth: missing required scope")
)

// Claims is the payload carried inside a token.
type Claims struct {
	Subject   string   `json:"sub"`
	Scopes    []string `json:"scopes"`
	IssuedAt  int64    `json:"iat"`
	ExpiresAt int64    `json:"exp"`
}

// HasScope reports whether the claims grant the given scope.
func (c *Claims) HasScope(scope string) bool {
	for _, s := range c.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Issuer mints and verifies tokens with a shared secret.
type Issuer struct {
	secret []byte
	now    func() time.Time
}

// NewIssuer returns an issuer using the given secret. The now function
// supplies the clock (pass the simulation runtime's Now for virtual-time
// expiry); nil means time.Now.
func NewIssuer(secret []byte, now func() time.Time) *Issuer {
	if len(secret) == 0 {
		panic("auth: empty issuer secret")
	}
	if now == nil {
		now = time.Now
	}
	return &Issuer{secret: append([]byte(nil), secret...), now: now}
}

// Issue mints a token for subject with the given scopes and time-to-live.
func (i *Issuer) Issue(subject string, scopes []string, ttl time.Duration) (string, error) {
	if subject == "" {
		return "", fmt.Errorf("auth: empty subject")
	}
	now := i.now()
	claims := Claims{
		Subject:   subject,
		Scopes:    append([]string(nil), scopes...),
		IssuedAt:  now.Unix(),
		ExpiresAt: now.Add(ttl).Unix(),
	}
	payload, err := json.Marshal(claims)
	if err != nil {
		return "", fmt.Errorf("auth: marshal claims: %w", err)
	}
	body := base64.RawURLEncoding.EncodeToString(payload)
	return body + "." + i.sign(body), nil
}

// Verify validates a token's signature and expiry and, if requiredScope is
// non-empty, that the token grants it. It returns the embedded claims.
func (i *Issuer) Verify(token, requiredScope string) (*Claims, error) {
	body, sig, ok := strings.Cut(token, ".")
	if !ok || body == "" || sig == "" {
		return nil, ErrMalformed
	}
	want := i.sign(body)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return nil, ErrSignature
	}
	payload, err := base64.RawURLEncoding.DecodeString(body)
	if err != nil {
		return nil, ErrMalformed
	}
	var claims Claims
	if err := json.Unmarshal(payload, &claims); err != nil {
		return nil, ErrMalformed
	}
	if i.now().Unix() >= claims.ExpiresAt {
		return nil, ErrExpired
	}
	if requiredScope != "" && !claims.HasScope(requiredScope) {
		return nil, fmt.Errorf("%w: %s", ErrScope, requiredScope)
	}
	return &claims, nil
}

func (i *Issuer) sign(body string) string {
	mac := hmac.New(sha256.New, i.secret)
	mac.Write([]byte(body))
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}
