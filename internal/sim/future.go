package sim

// Future is a single-assignment result cell integrated with the simulation
// kernel: processes can block on it with Wait, and event-style code can
// subscribe with OnDone. A Future must only be used by code driven by the
// kernel it was created from (the kernel serializes all access, so no
// locking is required).
type Future[T any] struct {
	k       *Kernel
	done    bool
	val     T
	err     error
	waiters []*Proc
	cbs     []func(T, error)
}

// NewFuture returns an unresolved Future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the resolved value and error. It must only be called after
// Done reports true (or Wait/OnDone has fired); otherwise it returns zero
// values.
func (f *Future[T]) Value() (T, error) { return f.val, f.err }

// Resolve sets the future's value and wakes all waiters at the current
// virtual instant. Resolving an already-resolved future is a no-op, which
// makes idempotent completion paths (success racing a timeout, say) safe.
func (f *Future[T]) Resolve(v T, err error) {
	if f.done {
		return
	}
	f.done = true
	f.val, f.err = v, err
	for _, cb := range f.cbs {
		cb := cb
		f.k.After(0, func() { cb(f.val, f.err) })
	}
	f.cbs = nil
	for _, p := range f.waiters {
		p := p
		f.k.After(0, func() { p.unpark() })
	}
	f.waiters = nil
}

// Wait blocks the process until the future resolves and returns its value.
func (f *Future[T]) Wait(p *Proc) (T, error) {
	if f.done {
		return f.val, f.err
	}
	f.waiters = append(f.waiters, p)
	p.park()
	return f.val, f.err
}

// OnDone registers cb to run (as a kernel event) once the future resolves.
// If the future is already resolved, cb is scheduled immediately.
func (f *Future[T]) OnDone(cb func(T, error)) {
	if f.done {
		f.k.After(0, func() { cb(f.val, f.err) })
		return
	}
	f.cbs = append(f.cbs, cb)
}
