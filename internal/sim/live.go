package sim

import (
	"sync"
	"time"
)

// LiveRuntime implements Runtime with real goroutines and real (optionally
// scaled) sleeps, so that process code written for the simulation kernel can
// run against the wall clock in live deployments and fast integration tests.
//
// Scale is the number of virtual seconds that elapse per real second: with
// Scale=60 a process sleeping one virtual minute sleeps one real second.
// Now returns Epoch plus the scaled elapsed real time, so durations computed
// from Context.Now are expressed in virtual time regardless of scale.
type LiveRuntime struct {
	epoch time.Time
	start time.Time
	scale float64
	wg    sync.WaitGroup
}

// NewLiveRuntime returns a live runtime whose virtual clock starts at
// DefaultEpoch and advances scale times faster than real time. A scale of 1
// is true real time; scale must be positive.
func NewLiveRuntime(scale float64) *LiveRuntime {
	if scale <= 0 {
		panic("sim: LiveRuntime scale must be positive")
	}
	return &LiveRuntime{epoch: DefaultEpoch, start: time.Now(), scale: scale}
}

// Now returns the current virtual time.
func (r *LiveRuntime) Now() time.Time {
	elapsed := time.Since(r.start)
	return r.epoch.Add(time.Duration(float64(elapsed) * r.scale))
}

// Spawn starts fn on a new goroutine. Use Wait to join all spawned
// processes.
func (r *LiveRuntime) Spawn(name string, fn func(Context)) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn(&liveCtx{r: r, name: name})
	}()
}

// AfterFunc schedules fn after d of virtual time on its own goroutine.
func (r *LiveRuntime) AfterFunc(d time.Duration, fn func()) {
	r.wg.Add(1)
	time.AfterFunc(r.real(d), func() {
		defer r.wg.Done()
		fn()
	})
}

// Wait blocks until every process started with Spawn (and every pending
// AfterFunc callback) has finished.
func (r *LiveRuntime) Wait() { r.wg.Wait() }

// real converts a virtual duration to the real duration to sleep.
func (r *LiveRuntime) real(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / r.scale)
}

type liveCtx struct {
	r    *LiveRuntime
	name string
}

func (c *liveCtx) Now() time.Time        { return c.r.Now() }
func (c *liveCtx) Sleep(d time.Duration) { time.Sleep(c.r.real(d)) }
func (c *liveCtx) Name() string          { return c.name }

var _ Runtime = (*LiveRuntime)(nil)
