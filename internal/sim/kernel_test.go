package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(30*time.Millisecond, func() { got = append(got, 3) })
	k.After(10*time.Millisecond, func() { got = append(got, 1) })
	k.After(20*time.Millisecond, func() { got = append(got, 2) })
	end := k.Run()
	if want := DefaultEpoch.Add(30 * time.Millisecond); !end.Equal(want) {
		t.Errorf("end time = %v, want %v", end, want)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", got)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", got)
		}
	}
}

func TestPastEventClamped(t *testing.T) {
	k := NewKernel()
	fired := false
	k.After(time.Second, func() {
		k.At(k.Now().Add(-time.Hour), func() { fired = true })
	})
	k.Run()
	if !fired {
		t.Fatal("event scheduled in the past never fired")
	}
	if k.Now() != DefaultEpoch.Add(time.Second) {
		t.Fatalf("clock moved backwards: %v", k.Now())
	}
}

func TestProcSleepAccumulates(t *testing.T) {
	k := NewKernel()
	var wake []time.Duration
	k.Spawn("sleeper", func(ctx Context) {
		for i := 0; i < 5; i++ {
			ctx.Sleep(100 * time.Millisecond)
			wake = append(wake, ctx.Now().Sub(DefaultEpoch))
		}
	})
	k.Run()
	if len(wake) != 5 {
		t.Fatalf("wakeups = %d, want 5", len(wake))
	}
	for i, w := range wake {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if w != want {
			t.Errorf("wake[%d] = %v, want %v", i, w, want)
		}
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after Run, want 0", k.LiveProcs())
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			d := time.Duration((i*7)%13+1) * time.Millisecond
			k.Spawn(name, func(ctx Context) {
				for j := 0; j < 3; j++ {
					ctx.Sleep(d)
					log = append(log, ctx.Name())
				}
			})
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("log lengths = %d, %d; want 60", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("parent", func(ctx Context) {
		order = append(order, "parent-start")
		k.Spawn("child", func(c Context) {
			order = append(order, "child-start")
			c.Sleep(time.Second)
			order = append(order, "child-end")
		})
		ctx.Sleep(2 * time.Second)
		order = append(order, "parent-end")
	})
	k.Run()
	want := []string{"parent-start", "child-start", "child-end", "parent-end"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFutureWaitAndResolve(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	var got int
	var waited time.Duration
	k.Spawn("waiter", func(ctx Context) {
		v, err := f.Wait(ctx.(*Proc))
		if err != nil {
			t.Errorf("Wait err = %v", err)
		}
		got = v
		waited = ctx.Now().Sub(DefaultEpoch)
	})
	k.After(3*time.Second, func() { f.Resolve(42, nil) })
	k.Run()
	if got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
	if waited != 3*time.Second {
		t.Errorf("resolved at %v, want 3s", waited)
	}
}

func TestFutureAlreadyResolved(t *testing.T) {
	k := NewKernel()
	f := NewFuture[string](k)
	f.Resolve("ready", nil)
	f.Resolve("ignored", nil) // second resolve is a no-op
	var got string
	k.Spawn("waiter", func(ctx Context) {
		got, _ = f.Wait(ctx.(*Proc))
	})
	k.Run()
	if got != "ready" {
		t.Errorf("value = %q, want %q", got, "ready")
	}
}

func TestFutureOnDone(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	calls := 0
	f.OnDone(func(v int, err error) {
		if v != 7 {
			t.Errorf("callback v = %d", v)
		}
		calls++
	})
	k.After(time.Second, func() { f.Resolve(7, nil) })
	k.Run()
	f.OnDone(func(v int, err error) { calls++ }) // post-resolution subscription
	k.Run()
	if calls != 2 {
		t.Errorf("callback calls = %d, want 2", calls)
	}
}

func TestMultipleWaitersAllWake(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	woke := 0
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(ctx Context) {
			f.Wait(ctx.(*Proc))
			woke++
		})
	}
	k.After(time.Minute, func() { f.Resolve(1, nil) })
	k.Run()
	if woke != 8 {
		t.Errorf("woke = %d, want 8", woke)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		k.After(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(DefaultEpoch.Add(3 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want first two", fired)
	}
	if got := k.Now(); !got.Equal(DefaultEpoch.Add(3 * time.Second)) {
		t.Errorf("Now = %v, want epoch+3s", got)
	}
	k.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire: %v", fired)
	}
}

func TestProcPanicRecovered(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(ctx Context) {
		ctx.Sleep(time.Second)
		panic("kaboom")
	})
	survived := false
	k.Spawn("ok", func(ctx Context) {
		ctx.Sleep(2 * time.Second)
		survived = true
	})
	k.Run()
	if err := k.Err(); err == nil {
		t.Error("Err() = nil, want recorded panic")
	}
	if !survived {
		t.Error("panic in one proc killed the kernel")
	}
}

func TestBlockedProcReported(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	k.Spawn("stuck", func(ctx Context) { f.Wait(ctx.(*Proc)) })
	k.Run()
	if k.LiveProcs() != 1 {
		t.Errorf("LiveProcs = %d, want 1 (stuck proc)", k.LiveProcs())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the final clock equals epoch + max delay.
func TestPropertyEventsSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := NewKernel()
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			k.After(d, func() { fired = append(fired, d) })
		}
		k.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		maxd := fired[len(fired)-1]
		return k.Now().Equal(DefaultEpoch.Add(maxd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a process performing a random walk of sleeps observes Now equal
// to the running sum of its sleeps.
func TestPropertySleepSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		ok := true
		k.Spawn("walker", func(ctx Context) {
			var total time.Duration
			for i := 0; i < 50; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				ctx.Sleep(d)
				total += d
				if ctx.Now().Sub(DefaultEpoch) != total {
					ok = false
					return
				}
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLiveRuntimeScaledClock(t *testing.T) {
	r := NewLiveRuntime(1000) // 1000 virtual seconds per real second
	var woke time.Duration
	r.Spawn("sleeper", func(ctx Context) {
		ctx.Sleep(10 * time.Second) // 10ms real
		woke = ctx.Now().Sub(DefaultEpoch)
	})
	r.Wait()
	if woke < 10*time.Second || woke > 5*time.Minute {
		t.Errorf("virtual wake time = %v, want >=10s and well under 5m", woke)
	}
}

func TestLiveRuntimeAfterFunc(t *testing.T) {
	r := NewLiveRuntime(1000)
	done := make(chan struct{})
	r.AfterFunc(5*time.Second, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AfterFunc did not fire")
	}
	r.Wait()
}
