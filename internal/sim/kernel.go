// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock over a time-ordered event queue.
// Simulation code is written either as plain event callbacks (Kernel.At,
// Kernel.After) or as cooperative processes (Kernel.Spawn) that may block on
// Sleep and on Futures. Exactly one process or event callback executes at a
// time and ties are broken by scheduling order, so runs are fully
// deterministic and shared simulation state needs no locking.
//
// The same process code can run against real time through LiveRuntime, which
// implements the Runtime/Context pair with goroutines and (optionally scaled)
// time.Sleep. Services in this repository are written against Runtime so the
// identical orchestration logic is exercised in both simulated experiments
// and live end-to-end runs.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// DefaultEpoch is the virtual wall-clock time at which a fresh Kernel starts.
// The specific date is arbitrary; experiments report durations, not dates.
var DefaultEpoch = time.Date(2023, 6, 1, 9, 0, 0, 0, time.UTC)

// Context is the execution context handed to a spawned process. It is the
// only interface through which process code should observe or consume time,
// so that the code runs unchanged under the simulation kernel and under
// LiveRuntime.
type Context interface {
	// Now returns the current (virtual or scaled real) time.
	Now() time.Time
	// Sleep suspends the process for the given duration of virtual time.
	Sleep(d time.Duration)
	// Name returns the process name given at Spawn time.
	Name() string
}

// Runtime abstracts the ambient scheduler: the simulation kernel in
// experiments, or real goroutines in live deployments.
type Runtime interface {
	// Now returns the current time.
	Now() time.Time
	// Spawn starts a new process running fn.
	Spawn(name string, fn func(Context))
	// AfterFunc schedules fn to run once after d has elapsed.
	AfterFunc(d time.Duration, fn func())
}

// event is a single scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is a deterministic discrete-event simulation kernel. The zero value
// is not usable; construct with NewKernel.
type Kernel struct {
	now    time.Time
	seq    uint64
	queue  eventQueue
	parked chan struct{} // process -> kernel handoff
	procs  int           // live (spawned, not yet exited) processes
	panics []error
}

// NewKernel returns a kernel whose clock starts at DefaultEpoch.
func NewKernel() *Kernel {
	return &Kernel{now: DefaultEpoch, parked: make(chan struct{})}
}

// NewKernelAt returns a kernel whose clock starts at the given instant.
func NewKernelAt(epoch time.Time) *Kernel {
	return &Kernel{now: epoch, parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// LiveProcs reports the number of spawned processes that have not exited.
// A nonzero value after Run returns means processes are blocked forever
// (for example on a Future that was never resolved).
func (k *Kernel) LiveProcs() int { return k.procs }

// Err returns the accumulated panics recovered from processes, or nil.
func (k *Kernel) Err() error { return errors.Join(k.panics...) }

// At schedules fn to run at virtual time t. Times in the past are clamped to
// the current instant; among simultaneous events, scheduling order is
// preserved.
func (k *Kernel) At(t time.Time, fn func()) {
	if t.Before(k.now) {
		t = k.now
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now. Negative durations are clamped to 0.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.At(k.now.Add(d), fn)
}

// AfterFunc implements Runtime.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) { k.After(d, fn) }

// Run processes events until the queue is empty and returns the final
// virtual time.
func (k *Kernel) Run() time.Time {
	for k.queue.Len() > 0 {
		k.step()
	}
	return k.now
}

// RunUntil processes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t time.Time) {
	for k.queue.Len() > 0 && !k.queue[0].at.After(t) {
		k.step()
	}
	if t.After(k.now) {
		k.now = t
	}
}

// RunFor processes events for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) step() {
	ev := heap.Pop(&k.queue).(*event)
	if ev.at.After(k.now) {
		k.now = ev.at
	}
	ev.fn()
}

// Proc is a cooperative process executing under a Kernel. It implements
// Context.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Spawn starts fn as a cooperative process at the current instant.
// It implements Runtime.
func (k *Kernel) Spawn(name string, fn func(Context)) {
	k.After(0, func() {
		p := &Proc{k: k, name: name, resume: make(chan struct{})}
		k.procs++
		go func() {
			defer func() {
				if r := recover(); r != nil {
					k.panics = append(k.panics, fmt.Errorf("sim: proc %q panicked: %v", p.name, r))
				}
				k.procs--
				k.parked <- struct{}{}
			}()
			fn(p)
		}()
		<-k.parked // wait until the process parks or exits
	})
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Time { return p.k.now }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.At(k.now.Add(d), func() { p.unpark() })
	p.park()
}

// park suspends the process, handing control back to the kernel. The caller
// must already have arranged for a future unpark.
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
}

// unpark resumes the process from kernel context and waits for it to park
// again or exit.
func (p *Proc) unpark() {
	p.resume <- struct{}{}
	<-p.k.parked
}

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// compile-time interface checks
var (
	_ Runtime = (*Kernel)(nil)
	_ Context = (*Proc)(nil)
)
