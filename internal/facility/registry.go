package facility

import (
	"fmt"
	"sync"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/sim"
)

// Reason explains a placement decision.
type Reason string

// Placement reasons.
const (
	// ReasonLeastECT is a fresh placement by minimum estimated completion
	// time (transfer estimate + queue-wait estimate).
	ReasonLeastECT Reason = "least-ect"
	// ReasonSticky keeps a run at its previously placed facility.
	ReasonSticky Reason = "sticky"
	// ReasonConstraint honors an explicit facility constraint.
	ReasonConstraint Reason = "constraint"
	// ReasonFailoverOutage re-routes because the target facility is down.
	ReasonFailoverOutage Reason = "failover-outage"
	// ReasonFailoverBudget re-routes because the target's queue-wait
	// estimate exceeds the budget.
	ReasonFailoverBudget Reason = "failover-budget"
)

// Decision is the outcome of one placement call.
type Decision struct {
	Facility *Facility
	Reason   Reason
	// Wait is the chosen facility's queue-wait estimate at decision time.
	Wait time.Duration
	// From names the facility the run was re-routed away from (failovers
	// only).
	From string
}

// Stats aggregates registry activity.
type Stats struct {
	// Decisions counts Place calls.
	Decisions int
	// Failovers counts re-routed placements, split by cause.
	Failovers       int
	OutageFailovers int
	BudgetFailovers int
	// Restages counts runs whose staged data had to move to another
	// facility after a failover.
	Restages int
	// RunsByFacility counts distinct runs routed to each facility; a run
	// that fails over is counted at both its facilities.
	RunsByFacility map[string]int
	// FailoversFrom counts re-routes away from each facility.
	FailoversFrom map[string]int
}

// Registry holds the federation's facilities and places runs across them.
// All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	rt     sim.Runtime
	budget time.Duration
	order  []*Facility
	byID   map[string]*Facility
	sticky map[string]string // run key -> facility ID
	landed map[string]string // run key -> facility holding its staged data
	stats  Stats

	// journal, when attached via OpenJournal, records every mutation so
	// failover history survives a restart; journalErr is the last append
	// failure (see JournalErr).
	journal    *durable.Store
	journalErr error
}

// NewRegistry returns an empty registry. budget bounds the queue-wait
// estimate a sticky or constrained target may accumulate before the run
// fails over to the next-best facility; 0 disables budget failover.
func NewRegistry(rt sim.Runtime, budget time.Duration) *Registry {
	return &Registry{
		rt:     rt,
		budget: budget,
		byID:   map[string]*Facility{},
		sticky: map[string]string{},
		landed: map[string]string{},
		stats: Stats{
			RunsByFacility: map[string]int{},
			FailoversFrom:  map[string]int{},
		},
	}
}

// Add registers a facility. Registration order breaks placement ties.
func (r *Registry) Add(f *Facility) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[f.ID()]; dup {
		return fmt.Errorf("facility: duplicate facility %q", f.ID())
	}
	r.byID[f.ID()] = f
	r.order = append(r.order, f)
	return nil
}

// Get looks up a facility by ID.
func (r *Registry) Get(id string) (*Facility, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byID[id]
	return f, ok
}

// Facilities returns the registered facilities in registration order.
func (r *Registry) Facilities() []*Facility {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Facility(nil), r.order...)
}

// Place decides where one flow state of run runKey executes. constraint,
// when non-empty, pins the state to a named facility; otherwise the run's
// sticky placement is reused, and a run seen for the first time is placed
// at the facility with the least estimated completion time for moving
// bytes and queueing a job. A sticky or constrained target that is down,
// or whose queue-wait estimate exceeds the budget, triggers failover to
// the next-best up facility (re-routing is recorded and the run's sticky
// placement moves with it); a budget violation moves the run only when
// the destination is itself under budget and waiting less, since a
// re-route also costs a re-stage. Place returns an error only when every
// facility is down.
func (r *Registry) Place(runKey, constraint string, bytes int64) (Decision, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocked(journalOp{Op: opDecision})
	now := r.rt.Now()

	want, reason := "", Reason("")
	if constraint != "" {
		want, reason = constraint, ReasonConstraint
	} else if id, ok := r.sticky[runKey]; ok {
		want, reason = id, ReasonSticky
	}
	if want != "" {
		f, ok := r.byID[want]
		if !ok {
			return Decision{}, fmt.Errorf("facility: unknown facility %q", want)
		}
		wait := f.Sched.EstimateWait()
		if f.Up(now) && (r.budget <= 0 || wait <= r.budget) {
			r.commitLocked(runKey, f)
			return Decision{Facility: f, Reason: reason, Wait: wait}, nil
		}
		// Failover: the target is down or over budget.
		why := ReasonFailoverOutage
		if f.Up(now) {
			why = ReasonFailoverBudget
		}
		best, bestWait := r.bestLocked(now, bytes, want)
		if why == ReasonFailoverBudget && best != nil {
			// A budget violation only justifies moving when the
			// destination is actually better: under the budget itself and
			// waiting less than the over-budget target. Re-routing to a
			// facility with an even longer queue would add a re-stage on
			// top of a worse wait.
			if bestWait > r.budget || bestWait >= wait {
				best = nil
			}
		}
		if best == nil {
			if why == ReasonFailoverBudget {
				// Nowhere better to go: stay put rather than stall the run.
				r.commitLocked(runKey, f)
				return Decision{Facility: f, Reason: reason, Wait: wait}, nil
			}
			return Decision{}, fmt.Errorf("facility: all facilities down at %v", now)
		}
		cause := "outage"
		if why == ReasonFailoverBudget {
			cause = "budget"
		}
		r.noteLocked(journalOp{Op: opFailover, Fac: want, Why: cause})
		r.commitLocked(runKey, best)
		return Decision{Facility: best, Reason: why, Wait: bestWait, From: want}, nil
	}

	best, bestWait := r.bestLocked(now, bytes, "")
	if best == nil {
		return Decision{}, fmt.Errorf("facility: all facilities down at %v", now)
	}
	r.commitLocked(runKey, best)
	return Decision{Facility: best, Reason: ReasonLeastECT, Wait: bestWait}, nil
}

// bestLocked returns the up facility (excluding exclude) with the least
// estimated completion time and its queue-wait component, or nil when
// none is up. Ties go to registration order. EstimateWait is an
// O(queue × nodes) replay, so the wait is computed once per candidate
// and returned for reuse.
func (r *Registry) bestLocked(now time.Time, bytes int64, exclude string) (*Facility, time.Duration) {
	var best *Facility
	var bestECT, bestWait time.Duration
	for _, f := range r.order {
		if f.ID() == exclude || !f.Up(now) {
			continue
		}
		wait := f.Sched.EstimateWait()
		ect := f.EstimateTransfer(bytes) + wait
		if best == nil || ect < bestECT {
			best, bestECT, bestWait = f, ect, wait
		}
	}
	return best, bestWait
}

// commitLocked records the run's (possibly new) sticky placement.
func (r *Registry) commitLocked(runKey string, f *Facility) {
	if r.sticky[runKey] != f.ID() {
		r.noteLocked(journalOp{Op: opSticky, Run: runKey, Fac: f.ID()})
	}
}

// RecordLanding notes that runKey's staged data now lives at facilityID
// (the transfer provider's initial landing), so later states can detect
// cross-facility re-staging. Re-stages themselves go through MoveLanding,
// which also does the accounting.
func (r *Registry) RecordLanding(runKey, facilityID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocked(journalOp{Op: opLanding, Run: runKey, Fac: facilityID})
}

// Landed returns the facility holding runKey's staged data ("" if none).
func (r *Registry) Landed(runKey string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.landed[runKey]
}

// MoveLanding atomically relocates runKey's staged data to facilityID and
// reports where it moved from. It returns moved=false — and records
// nothing — when no data has landed yet or it already lives there, so
// concurrent states of one run (a fan-out's parallel branches) charge at
// most one re-stage per physical move.
func (r *Registry) MoveLanding(runKey, facilityID string) (from string, moved bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.landed[runKey]
	if !ok || old == facilityID {
		return "", false
	}
	r.noteLocked(journalOp{Op: opMove, Run: runKey, Fac: facilityID})
	return old, true
}

// Stats returns a copy of the registry's placement counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	out.RunsByFacility = make(map[string]int, len(r.stats.RunsByFacility))
	for k, v := range r.stats.RunsByFacility {
		out.RunsByFacility[k] = v
	}
	out.FailoversFrom = make(map[string]int, len(r.stats.FailoversFrom))
	for k, v := range r.stats.FailoversFrom {
		out.FailoversFrom[k] = v
	}
	return out
}

// Snapshot returns every facility's current Status in registration order.
func (r *Registry) Snapshot() []Status {
	r.mu.Lock()
	order := append([]*Facility(nil), r.order...)
	placed := make(map[string]int, len(r.stats.RunsByFacility))
	for k, v := range r.stats.RunsByFacility {
		placed[k] = v
	}
	failed := make(map[string]int, len(r.stats.FailoversFrom))
	for k, v := range r.stats.FailoversFrom {
		failed[k] = v
	}
	now := r.rt.Now()
	r.mu.Unlock()
	out := make([]Status, 0, len(order))
	for _, f := range order {
		out = append(out, f.snapshot(now, placed[f.ID()], failed[f.ID()]))
	}
	return out
}
