package facility

import (
	"fmt"
	"sync"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/health"
	"picoprobe/internal/netprobe"
	"picoprobe/internal/sim"
)

// Reason explains a placement decision.
type Reason string

// Placement reasons.
const (
	// ReasonLeastECT is a fresh placement by minimum estimated completion
	// time (transfer estimate + queue-wait estimate).
	ReasonLeastECT Reason = "least-ect"
	// ReasonSticky keeps a run at its previously placed facility.
	ReasonSticky Reason = "sticky"
	// ReasonConstraint honors an explicit facility constraint.
	ReasonConstraint Reason = "constraint"
	// ReasonFailoverOutage re-routes because the target facility is down.
	ReasonFailoverOutage Reason = "failover-outage"
	// ReasonFailoverBudget re-routes because the target's queue-wait
	// estimate exceeds the budget.
	ReasonFailoverBudget Reason = "failover-budget"
	// ReasonFailoverDegraded re-routes because the target path's link
	// score fell below the low-water mark (AttachQuality) — the link is
	// degrading but has not timed anything out yet.
	ReasonFailoverDegraded Reason = "failover-degraded"
	// ReasonFailoverUnhealthy re-routes because the heartbeat monitor
	// declared the target Down (AttachHealth) — a detected outage,
	// treated exactly like a planned one except nobody scheduled it.
	ReasonFailoverUnhealthy Reason = "failover-unhealthy"
)

// Decision is the outcome of one placement call.
type Decision struct {
	Facility *Facility
	Reason   Reason
	// Wait is the chosen facility's queue-wait estimate at decision time.
	Wait time.Duration
	// From names the facility the run was re-routed away from (failovers
	// only).
	From string
}

// Stats aggregates registry activity.
type Stats struct {
	// Decisions counts Place calls.
	Decisions int
	// Failovers counts re-routed placements, split by cause.
	Failovers          int
	OutageFailovers    int
	BudgetFailovers    int
	DegradedFailovers  int
	UnhealthyFailovers int
	// Restages counts runs whose staged data had to move to another
	// facility after a failover.
	Restages int
	// RunsByFacility counts distinct runs routed to each facility; a run
	// that fails over is counted at both its facilities.
	RunsByFacility map[string]int
	// FailoversFrom counts re-routes away from each facility.
	FailoversFrom map[string]int
}

// Registry holds the federation's facilities and places runs across them.
// All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	rt     sim.Runtime
	budget time.Duration
	order  []*Facility
	byID   map[string]*Facility
	sticky map[string]string // run key -> facility ID
	landed map[string]string // run key -> facility holding its staged data
	stats  Stats

	// journal, when attached via OpenJournal, records every mutation so
	// failover history survives a restart; journalErr is the last append
	// failure (see JournalErr).
	journal    *durable.Store
	journalErr error

	// quality, when attached via AttachQuality, scores each facility's
	// path; a facility whose score is below lowWater sheds new runs
	// (lowWater <= 0 keeps quality observe-only).
	quality  netprobe.PathQuality
	lowWater float64

	// health, when attached via AttachHealth, supplies heartbeat
	// liveness verdicts per facility (keyed by PathID, like quality).
	health health.Provider

	// sink, when set via SetEventSink, receives placement transitions
	// (sticky moves, failovers, landings, re-stages) as they commit.
	sink func(Event)
}

// Event is one placement-side status transition, published to the
// optional event sink (the portal's SSE hub fans these out to watching
// clients). Kind mirrors the journal op vocabulary.
type Event struct {
	Kind     string    `json:"kind"` // "sticky" | "failover" | "landing" | "move"
	Run      string    `json:"run,omitempty"`
	Facility string    `json:"facility,omitempty"`
	Why      string    `json:"why,omitempty"` // failover cause
	At       time.Time `json:"at"`
}

// SetEventSink registers fn to receive placement transitions. fn is
// called synchronously while the registry lock is held, so it must be
// fast, must not block, and must not call back into the registry — the
// portal hub's non-blocking Publish satisfies all three.
func (r *Registry) SetEventSink(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = fn
}

// NewRegistry returns an empty registry. budget bounds the queue-wait
// estimate a sticky or constrained target may accumulate before the run
// fails over to the next-best facility; 0 disables budget failover.
func NewRegistry(rt sim.Runtime, budget time.Duration) *Registry {
	return &Registry{
		rt:     rt,
		budget: budget,
		byID:   map[string]*Facility{},
		sticky: map[string]string{},
		landed: map[string]string{},
		stats: Stats{
			RunsByFacility: map[string]int{},
			FailoversFrom:  map[string]int{},
		},
	}
}

// Add registers a facility. Registration order breaks placement ties.
func (r *Registry) Add(f *Facility) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[f.ID()]; dup {
		return fmt.Errorf("facility: duplicate facility %q", f.ID())
	}
	r.byID[f.ID()] = f
	r.order = append(r.order, f)
	return nil
}

// AttachQuality wires a link-quality provider into placement. Each
// facility's path (Config.PathID) is scored by q; a facility whose score
// falls below lowWater sheds *new* runs — fresh placements avoid it and
// sticky or constrained runs fail over with ReasonFailoverDegraded —
// exactly as an outage window does, except the facility itself stays up,
// so work already executing there drains normally. The measured goodput
// also refines the transfer half of the completion-time estimate, so a
// partially degraded path loses placements proportionally even above the
// low-water mark. lowWater <= 0 is observe-only: quality appears in
// Snapshot but placement is untouched. With no quality attached every
// decision is bit-identical to a registry built before this subsystem
// existed.
func (r *Registry) AttachQuality(q netprobe.PathQuality, lowWater float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.quality = q
	r.lowWater = lowWater
}

// AttachHealth wires a heartbeat liveness provider into placement. Each
// facility's verdict is read by PathID (the same key quality uses). A
// facility the monitor declares Down is treated exactly like one inside
// a planned outage window: fresh placements skip it and sticky or
// constrained runs fail over with ReasonFailoverUnhealthy (journaled as
// "unhealthy", replayed like every other failover). A Suspect facility
// is soft-avoided the way a degraded path is — new runs go elsewhere
// while any healthy facility is up, but sticky runs stay put, because
// one lost heartbeat is usually a blip and a re-stage is not free. With
// no provider attached every decision is bit-identical to a registry
// built before this subsystem existed.
func (r *Registry) AttachHealth(h health.Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.health = h
}

// unhealthyLocked reports whether the heartbeat monitor declared f
// Down. Unwatched facilities are never unhealthy (healthy until proven
// otherwise, like unmeasured paths).
func (r *Registry) unhealthyLocked(f *Facility) bool {
	if r.health == nil {
		return false
	}
	st, ok := r.health.Health(f.PathID())
	return ok && st.State == health.Down
}

// suspectLocked reports whether the heartbeat monitor holds f Suspect.
func (r *Registry) suspectLocked(f *Facility) bool {
	if r.health == nil {
		return false
	}
	st, ok := r.health.Health(f.PathID())
	return ok && st.State == health.Suspect
}

// degradedLocked reports whether f's path score is below the low-water
// mark. Unmeasured paths are never degraded (healthy until proven
// otherwise — shedding on ignorance would strand a cold-started
// federation).
func (r *Registry) degradedLocked(f *Facility) bool {
	if r.quality == nil || r.lowWater <= 0 {
		return false
	}
	q, ok := r.quality.Quality(f.PathID())
	return ok && q.Windows > 0 && q.Score < r.lowWater
}

// estimateTransferLocked returns the transfer half of f's completion-time
// estimate, substituting the measured path goodput for the static stream
// cap when it is lower — a degrading link loses placements before it
// crosses the low-water mark.
func (r *Registry) estimateTransferLocked(f *Facility, bytes int64) time.Duration {
	d := f.TransferSetup()
	if bytes <= 0 {
		return d
	}
	rate := f.StreamCap()
	if r.quality != nil {
		if q, ok := r.quality.Quality(f.PathID()); ok && q.Windows > 0 && q.GoodputBps > 0 {
			if rate <= 0 || q.GoodputBps < rate {
				rate = q.GoodputBps
			}
		}
	}
	if rate > 0 {
		d += time.Duration(float64(bytes) * 8 / rate * float64(time.Second))
	}
	return d
}

// Get looks up a facility by ID.
func (r *Registry) Get(id string) (*Facility, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byID[id]
	return f, ok
}

// Facilities returns the registered facilities in registration order.
func (r *Registry) Facilities() []*Facility {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Facility(nil), r.order...)
}

// Place decides where one flow state of run runKey executes. constraint,
// when non-empty, pins the state to a named facility; otherwise the run's
// sticky placement is reused, and a run seen for the first time is placed
// at the facility with the least estimated completion time for moving
// bytes and queueing a job. A sticky or constrained target that is down,
// or whose queue-wait estimate exceeds the budget, triggers failover to
// the next-best up facility (re-routing is recorded and the run's sticky
// placement moves with it); a budget violation moves the run only when
// the destination is itself under budget and waiting less, since a
// re-route also costs a re-stage. Place returns an error only when every
// facility is down.
func (r *Registry) Place(runKey, constraint string, bytes int64) (Decision, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocked(journalOp{Op: opDecision})
	now := r.rt.Now()

	want, reason := "", Reason("")
	if constraint != "" {
		want, reason = constraint, ReasonConstraint
	} else if id, ok := r.sticky[runKey]; ok {
		want, reason = id, ReasonSticky
	}
	if want != "" {
		f, ok := r.byID[want]
		if !ok {
			return Decision{}, fmt.Errorf("facility: unknown facility %q", want)
		}
		wait := f.Sched.EstimateWait()
		degraded := r.degradedLocked(f)
		unhealthy := r.unhealthyLocked(f)
		if f.Up(now) && !unhealthy && !degraded && (r.budget <= 0 || wait <= r.budget) {
			r.commitLocked(runKey, f)
			return Decision{Facility: f, Reason: reason, Wait: wait}, nil
		}
		// Failover: the target is down (planned or heartbeat-detected),
		// its path is degraded, or it is over budget — in that precedence
		// (an outage is absolute, a detected outage is just as absolute, a
		// degraded link outranks a long queue).
		why := ReasonFailoverOutage
		switch {
		case !f.Up(now):
			why = ReasonFailoverOutage
		case unhealthy:
			why = ReasonFailoverUnhealthy
		case degraded:
			why = ReasonFailoverDegraded
		default:
			why = ReasonFailoverBudget
		}
		best, bestWait, bestDegraded := r.bestLocked(now, bytes, want)
		switch why {
		case ReasonFailoverBudget:
			// A budget violation only justifies moving when the
			// destination is actually better: under the budget itself and
			// waiting less than the over-budget target. Re-routing to a
			// facility with an even longer queue would add a re-stage on
			// top of a worse wait.
			if best != nil && (bestWait > r.budget || bestWait >= wait) {
				best = nil
			}
		case ReasonFailoverDegraded:
			// A degraded link is soft — the facility still works, just
			// badly. Shed only onto a healthy path; when every alternative
			// is down or equally degraded, staying put beats paying a
			// re-stage for no improvement.
			if bestDegraded {
				best = nil
			}
		}
		if best == nil {
			if why != ReasonFailoverOutage && why != ReasonFailoverUnhealthy && f.Up(now) {
				// Nowhere better to go: stay put rather than stall the run.
				// (Never for an outage or a Down heartbeat verdict — staying
				// on an unreachable facility stalls the run by definition.)
				r.commitLocked(runKey, f)
				return Decision{Facility: f, Reason: reason, Wait: wait}, nil
			}
			return Decision{}, fmt.Errorf("facility: all facilities down at %v", now)
		}
		cause := "outage"
		switch why {
		case ReasonFailoverBudget:
			cause = "budget"
		case ReasonFailoverDegraded:
			cause = "degraded"
		case ReasonFailoverUnhealthy:
			cause = "unhealthy"
		}
		r.noteLocked(journalOp{Op: opFailover, Fac: want, Why: cause})
		r.commitLocked(runKey, best)
		return Decision{Facility: best, Reason: why, Wait: bestWait, From: want}, nil
	}

	best, bestWait, _ := r.bestLocked(now, bytes, "")
	if best == nil {
		return Decision{}, fmt.Errorf("facility: all facilities down at %v", now)
	}
	r.commitLocked(runKey, best)
	return Decision{Facility: best, Reason: ReasonLeastECT, Wait: bestWait}, nil
}

// bestLocked returns the up facility (excluding exclude) with the least
// estimated completion time and its queue-wait component, or nil when
// none is up. A facility the heartbeat monitor holds Down is skipped
// outright, exactly like one inside an outage window. Facilities whose
// path is degraded (below the quality low-water mark) or whose
// heartbeat verdict is Suspect are passed over while any healthy
// facility is up; when every up facility is degraded or suspect the
// least-ECT one of them is returned with degraded=true — a slow link
// still beats no link. Ties go to registration order. EstimateWait is
// an O(queue × nodes) replay, so the wait is computed once per
// candidate and returned for reuse.
func (r *Registry) bestLocked(now time.Time, bytes int64, exclude string) (best *Facility, bestWait time.Duration, degraded bool) {
	var bestECT time.Duration
	var degBest *Facility
	var degECT, degWait time.Duration
	for _, f := range r.order {
		if f.ID() == exclude || !f.Up(now) || r.unhealthyLocked(f) {
			continue
		}
		wait := f.Sched.EstimateWait()
		ect := r.estimateTransferLocked(f, bytes) + wait
		if r.degradedLocked(f) || r.suspectLocked(f) {
			if degBest == nil || ect < degECT {
				degBest, degECT, degWait = f, ect, wait
			}
			continue
		}
		if best == nil || ect < bestECT {
			best, bestECT, bestWait = f, ect, wait
		}
	}
	if best == nil && degBest != nil {
		return degBest, degWait, true
	}
	return best, bestWait, false
}

// commitLocked records the run's (possibly new) sticky placement.
func (r *Registry) commitLocked(runKey string, f *Facility) {
	if r.sticky[runKey] != f.ID() {
		r.noteLocked(journalOp{Op: opSticky, Run: runKey, Fac: f.ID()})
	}
}

// RecordLanding notes that runKey's staged data now lives at facilityID
// (the transfer provider's initial landing), so later states can detect
// cross-facility re-staging. Re-stages themselves go through MoveLanding,
// which also does the accounting.
func (r *Registry) RecordLanding(runKey, facilityID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocked(journalOp{Op: opLanding, Run: runKey, Fac: facilityID})
}

// Landed returns the facility holding runKey's staged data ("" if none).
func (r *Registry) Landed(runKey string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.landed[runKey]
}

// MoveLanding atomically relocates runKey's staged data to facilityID and
// reports where it moved from. It returns moved=false — and records
// nothing — when no data has landed yet or it already lives there, so
// concurrent states of one run (a fan-out's parallel branches) charge at
// most one re-stage per physical move.
func (r *Registry) MoveLanding(runKey, facilityID string) (from string, moved bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.landed[runKey]
	if !ok || old == facilityID {
		return "", false
	}
	r.noteLocked(journalOp{Op: opMove, Run: runKey, Fac: facilityID})
	return old, true
}

// Stats returns a copy of the registry's placement counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	out.RunsByFacility = make(map[string]int, len(r.stats.RunsByFacility))
	for k, v := range r.stats.RunsByFacility {
		out.RunsByFacility[k] = v
	}
	out.FailoversFrom = make(map[string]int, len(r.stats.FailoversFrom))
	for k, v := range r.stats.FailoversFrom {
		out.FailoversFrom[k] = v
	}
	return out
}

// Snapshot returns every facility's current Status in registration order.
func (r *Registry) Snapshot() []Status {
	r.mu.Lock()
	order := append([]*Facility(nil), r.order...)
	placed := make(map[string]int, len(r.stats.RunsByFacility))
	for k, v := range r.stats.RunsByFacility {
		placed[k] = v
	}
	failed := make(map[string]int, len(r.stats.FailoversFrom))
	for k, v := range r.stats.FailoversFrom {
		failed[k] = v
	}
	now := r.rt.Now()
	quality, lowWater := r.quality, r.lowWater
	hp := r.health
	r.mu.Unlock()
	out := make([]Status, 0, len(order))
	for _, f := range order {
		var qs *QualityStatus
		if quality != nil {
			if q, ok := quality.Quality(f.PathID()); ok {
				qs = &QualityStatus{
					Score:      q.Score,
					RTTMs:      q.RTT.Seconds() * 1e3,
					JitterMs:   q.Jitter.Seconds() * 1e3,
					Loss:       q.Loss,
					GoodputBps: q.GoodputBps,
					Degraded:   lowWater > 0 && q.Windows > 0 && q.Score < lowWater,
				}
				if !q.LastSample.IsZero() {
					qs.AgeS = now.Sub(q.LastSample).Seconds()
				}
			}
		}
		var hs *HealthStatus
		if hp != nil {
			if h, ok := hp.Health(f.PathID()); ok {
				hs = &HealthStatus{
					State:   h.State.String(),
					LastErr: h.LastErr,
					Checks:  h.Checks,
					Fails:   h.Fails,
					RTTMs:   h.LastRTT.Seconds() * 1e3,
				}
				if !h.Since.IsZero() {
					hs.SinceS = now.Sub(h.Since).Seconds()
				}
				if !h.LastCheck.IsZero() {
					hs.LastCheckAgeS = now.Sub(h.LastCheck).Seconds()
				}
			}
		}
		out = append(out, f.snapshot(now, placed[f.ID()], failed[f.ID()], qs, hs))
	}
	return out
}
