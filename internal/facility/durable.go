package facility

import (
	"encoding/json"
	"fmt"
	"io"

	"picoprobe/internal/durable"
)

// journalOp is one journaled registry mutation. The five ops cover
// exactly the state that must survive a restart: sticky placements, data
// landings, and the placement/failover/re-stage counters the federated
// experiment reports.
type journalOp struct {
	Op  string `json:"op"`
	Run string `json:"run,omitempty"`
	Fac string `json:"fac,omitempty"`
	Why string `json:"why,omitempty"` // failover cause: "outage", "budget", "degraded" or "unhealthy"
}

const (
	opDecision = "decision" // one Place call
	opFailover = "failover" // a re-route away from Fac (Why = cause)
	opSticky   = "sticky"   // Run's sticky placement moved to Fac
	opLanding  = "landing"  // Run's staged data initially landed at Fac
	opMove     = "move"     // Run's staged data re-staged to Fac
)

// registryState is the snapshot payload: the full replayable state.
type registryState struct {
	Sticky map[string]string `json:"sticky"`
	Landed map[string]string `json:"landed"`
	Stats  Stats             `json:"stats"`
}

// applyLocked performs op's state change. It is the single mutation path
// shared by live operation and journal replay, so a restored registry is
// field-for-field identical to the one that crashed.
func (r *Registry) applyLocked(op journalOp) {
	switch op.Op {
	case opDecision:
		r.stats.Decisions++
	case opFailover:
		r.stats.Failovers++
		switch op.Why {
		case "budget":
			r.stats.BudgetFailovers++
		case "degraded":
			r.stats.DegradedFailovers++
		case "unhealthy":
			r.stats.UnhealthyFailovers++
		default:
			r.stats.OutageFailovers++
		}
		r.stats.FailoversFrom[op.Fac]++
	case opSticky:
		r.sticky[op.Run] = op.Fac
		r.stats.RunsByFacility[op.Fac]++
	case opLanding:
		r.landed[op.Run] = op.Fac
	case opMove:
		r.landed[op.Run] = op.Fac
		r.stats.Restages++
	}
}

// noteLocked applies op and, when a journal is attached, appends it.
// Journaling is best-effort: placement must keep working on a full disk,
// so failures surface through JournalErr instead of failing Place.
func (r *Registry) noteLocked(op journalOp) {
	r.applyLocked(op)
	if r.sink != nil && op.Op != opDecision {
		// Placement transitions fan out to the event sink; bare decision
		// ticks carry no run/facility payload and are skipped.
		r.sink(Event{Kind: op.Op, Run: op.Run, Facility: op.Fac, Why: op.Why, At: r.rt.Now()})
	}
	if r.journal == nil {
		return
	}
	raw, err := json.Marshal(op)
	if err == nil {
		_, err = r.journal.Append(raw)
	}
	r.journalErr = err
}

// OpenJournal attaches a durable journal in dir to the registry and
// replays any existing history into it, so sticky placements, landings
// and failover/re-stage counters survive a restart. Call it after Add-ing
// the facilities and before the first Place. Replayed ops may reference
// facilities by ID only, so the facility set need not match exactly — a
// reconfigured federation keeps its history.
func (r *Registry) OpenJournal(dir string, opts durable.Options) (durable.RecoveryStats, error) {
	r.mu.Lock()
	attached := r.journal != nil
	r.mu.Unlock()
	if attached {
		return durable.RecoveryStats{}, fmt.Errorf("facility: journal already attached")
	}
	log, stats, err := durable.Open(dir, opts,
		func(rd io.Reader) error {
			var st registryState
			if err := json.NewDecoder(rd).Decode(&st); err != nil {
				return err
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			for k, v := range st.Sticky {
				r.sticky[k] = v
			}
			for k, v := range st.Landed {
				r.landed[k] = v
			}
			if st.Stats.RunsByFacility == nil {
				st.Stats.RunsByFacility = map[string]int{}
			}
			if st.Stats.FailoversFrom == nil {
				st.Stats.FailoversFrom = map[string]int{}
			}
			r.stats = st.Stats
			return nil
		},
		func(p []byte) error {
			var op journalOp
			if err := json.Unmarshal(p, &op); err != nil {
				return fmt.Errorf("facility: bad journal record: %w", err)
			}
			r.mu.Lock()
			r.applyLocked(op)
			r.mu.Unlock()
			return nil
		})
	if err != nil {
		return stats, err
	}
	r.mu.Lock()
	r.journal = log
	r.mu.Unlock()
	return stats, nil
}

// CompactJournal snapshots the registry's replayable state and reclaims
// the WAL segments it covers.
func (r *Registry) CompactJournal() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.journal == nil {
		return fmt.Errorf("facility: no journal attached")
	}
	state := registryState{Sticky: r.sticky, Landed: r.landed, Stats: r.stats}
	return r.journal.Snapshot(func(w io.Writer) error {
		return json.NewEncoder(w).Encode(state)
	})
}

// JournalErr returns the most recent journaling failure (nil after a
// successful append).
func (r *Registry) JournalErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journalErr
}

// CloseJournal flushes and detaches the journal. The registry keeps
// working in memory.
func (r *Registry) CloseJournal() error {
	r.mu.Lock()
	log := r.journal
	r.journal = nil
	r.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}
