package facility

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/netprobe"
	"picoprobe/internal/sim"
)

// stubQuality is a mutable PathQuality for tests.
type stubQuality struct {
	mu sync.Mutex
	q  map[string]netprobe.Quality
}

func newStubQuality() *stubQuality { return &stubQuality{q: map[string]netprobe.Quality{}} }

func (s *stubQuality) set(id string, score, goodput float64) {
	s.mu.Lock()
	s.q[id] = netprobe.Quality{Score: score, GoodputBps: goodput, Windows: 1, RTT: 20 * time.Millisecond}
	s.mu.Unlock()
}

func (s *stubQuality) Quality(id string) (netprobe.Quality, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.q[id]
	return q, ok
}

func TestDegradedShedsFreshPlacements(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	fast := testFacility(t, k, "fast", 1, 80e6)
	slow := testFacility(t, k, "slow", 1, 20e6)
	r.Add(fast)
	r.Add(slow)
	q := newStubQuality()
	r.AttachQuality(q, 50)

	// Unmeasured paths are healthy: fast wins as before.
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil || dec.Facility.ID() != "fast" {
		t.Fatalf("unmeasured placement = %+v err=%v, want fast", dec, err)
	}

	// fast's path collapses below the low-water mark: fresh runs shed to
	// slow even though fast's static ECT is better.
	q.set("fast", 12, 4e6)
	q.set("slow", 95, 20e6)
	dec, err = r.Place("run-2", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "slow" || dec.Reason != ReasonLeastECT {
		t.Errorf("fresh placement = %s/%s, want slow/least-ect", dec.Facility.ID(), dec.Reason)
	}
}

func TestDegradedFailoverStickyRun(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 20e6)
	r.Add(a)
	r.Add(b)
	q := newStubQuality()
	r.AttachQuality(q, 50)

	if dec, _ := r.Place("run-1", "", 91_000_000); dec.Facility.ID() != "a" {
		t.Fatalf("seed placement not at a: %+v", dec)
	}
	q.set("a", 10, 3e6)
	q.set("b", 90, 20e6)
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" || dec.Reason != ReasonFailoverDegraded || dec.From != "a" {
		t.Errorf("decision = %+v, want b/failover-degraded from a", dec)
	}
	st := r.Stats()
	if st.DegradedFailovers != 1 || st.Failovers != 1 || st.FailoversFrom["a"] != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The run is sticky at b now.
	if dec, _ := r.Place("run-1", "", 0); dec.Facility.ID() != "b" || dec.Reason != ReasonSticky {
		t.Errorf("follow-up = %+v, want sticky b", dec)
	}
}

func TestAllDegradedStaysPut(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 20e6)
	r.Add(a)
	r.Add(b)
	q := newStubQuality()
	r.AttachQuality(q, 50)
	if dec, _ := r.Place("run-1", "", 91_000_000); dec.Facility.ID() != "a" {
		t.Fatal("seed placement not at a")
	}
	q.set("a", 10, 3e6)
	q.set("b", 5, 2e6)
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "a" || dec.Reason != ReasonSticky {
		t.Errorf("decision = %+v, want stay-put sticky at a", dec)
	}
	if st := r.Stats(); st.Failovers != 0 {
		t.Errorf("no failover should be recorded, got %+v", st)
	}
	// Fresh runs still place somewhere (least-ECT among the degraded).
	if dec, err := r.Place("run-2", "", 91_000_000); err != nil || dec.Facility == nil {
		t.Errorf("fresh placement with all degraded: %+v err=%v", dec, err)
	}
}

func TestMeasuredGoodputRefinesECT(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	fast := testFacility(t, k, "fast", 1, 80e6)
	slow := testFacility(t, k, "slow", 1, 20e6)
	r.Add(fast)
	r.Add(slow)
	q := newStubQuality()
	r.AttachQuality(q, 0) // observe-only: no shedding, but measured ECT
	// fast's path is measured far below its static stream cap; both are
	// above any low-water concern (scores healthy).
	q.set("fast", 90, 5e6)
	q.set("slow", 95, 20e6)
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "slow" {
		t.Errorf("placement = %s, want slow (measured goodput beats static cap)", dec.Facility.ID())
	}
}

// TestQualityDisabledIdenticalDecisions replays the same decision
// sequence against a bare registry and one with an attached-but-unmeasured
// provider, then one in observe-only mode with healthy scores: all three
// must decide identically — the degeneracy contract.
func TestQualityDisabledIdenticalDecisions(t *testing.T) {
	build := func(attach bool, lowWater float64, healthy bool) []string {
		k := sim.NewKernel()
		r := NewRegistry(k, 0)
		r.Add(testFacility(t, k, "a", 1, 80e6))
		r.Add(testFacility(t, k, "b", 1, 20e6))
		if attach {
			q := newStubQuality()
			if healthy {
				q.set("a", 100, 80e6)
				q.set("b", 100, 20e6)
			}
			r.AttachQuality(q, lowWater)
		}
		var got []string
		for i, key := range []string{"r1", "r2", "r1", "r3", "r2"} {
			dec, err := r.Place(key, "", int64(i)*10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, dec.Facility.ID()+"/"+string(dec.Reason))
		}
		return got
	}
	bare := build(false, 0, false)
	unmeasured := build(true, 50, false)
	observeOnly := build(true, 0, true)
	if !reflect.DeepEqual(bare, unmeasured) {
		t.Errorf("unmeasured provider changed decisions: %v vs %v", unmeasured, bare)
	}
	if !reflect.DeepEqual(bare, observeOnly) {
		t.Errorf("observe-only healthy provider changed decisions: %v vs %v", observeOnly, bare)
	}
}

// TestDegradedFailoverJournalReplay checks the new failover cause
// round-trips through the durable journal: a restored registry keeps the
// DegradedFailovers split exactly.
func TestDegradedFailoverJournalReplay(t *testing.T) {
	dir := t.TempDir()
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))
	if _, err := r.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	q := newStubQuality()
	r.AttachQuality(q, 50)
	r.Place("run-1", "", 91_000_000)
	q.set("a", 10, 3e6)
	q.set("b", 90, 20e6)
	if dec, err := r.Place("run-1", "", 0); err != nil || dec.Reason != ReasonFailoverDegraded {
		t.Fatalf("expected degraded failover, got %+v err=%v", dec, err)
	}
	want := r.Stats()
	if want.DegradedFailovers != 1 {
		t.Fatalf("DegradedFailovers = %d, want 1", want.DegradedFailovers)
	}

	k2 := sim.NewKernel()
	r2 := NewRegistry(k2, 0)
	r2.Add(testFacility(t, k2, "a", 1, 80e6))
	r2.Add(testFacility(t, k2, "b", 1, 20e6))
	if _, err := r2.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored stats = %+v, want %+v", got, want)
	}
	if r2.sticky["run-1"] != "b" {
		t.Errorf("restored sticky = %q, want b", r2.sticky["run-1"])
	}
}

func TestSnapshotQualityBlock(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))

	// No provider: nil quality everywhere (probing disabled).
	for _, st := range r.Snapshot() {
		if st.Quality != nil {
			t.Fatalf("quality without provider: %+v", st.Quality)
		}
	}

	q := newStubQuality()
	r.AttachQuality(q, 50)
	q.set("a", 12.5, 4e6)
	snaps := r.Snapshot()
	if snaps[0].Quality == nil {
		t.Fatal("measured path lost its quality block")
	}
	if snaps[0].Quality.Score != 12.5 || !snaps[0].Quality.Degraded {
		t.Errorf("a quality = %+v", snaps[0].Quality)
	}
	if snaps[0].Quality.RTTMs != 20 {
		t.Errorf("RTTMs = %v, want 20", snaps[0].Quality.RTTMs)
	}
	if snaps[1].Quality != nil {
		t.Errorf("unmeasured path should have nil quality, got %+v", snaps[1].Quality)
	}
}

// TestConcurrentQualityWritersVsPlacement is the -race gate for the
// registry's quality seam: probe writers mutate scores while placement
// and snapshot readers run.
func TestConcurrentQualityWritersVsPlacement(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 2, 80e6))
	r.Add(testFacility(t, k, "b", 2, 20e6))
	q := newStubQuality()
	r.AttachQuality(q, 50)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				score := float64((i + w*7) % 100)
				q.set("a", score, 1e6*float64(i%50+1))
				q.set("b", 100-score, 2e7)
			}
		}(w)
	}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := r.Place("hammer", "", 10_000_000); err != nil {
					t.Errorf("place: %v", err)
					return
				}
				if i%100 == 0 {
					r.Snapshot()
					r.Stats()
				}
			}
		}(rd)
	}
	wg.Wait()
}
