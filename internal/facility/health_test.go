package facility

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/health"
	"picoprobe/internal/sim"
)

// stubHealth is a mutable health.Provider for tests.
type stubHealth struct {
	mu sync.Mutex
	h  map[string]health.Status
}

func newStubHealth() *stubHealth { return &stubHealth{h: map[string]health.Status{}} }

func (s *stubHealth) set(id string, st health.State) {
	s.mu.Lock()
	s.h[id] = health.Status{State: st, Checks: 10, Fails: 3, LastRTT: 5 * time.Millisecond}
	s.mu.Unlock()
}

func (s *stubHealth) Health(id string) (health.Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.h[id]
	return st, ok
}

func TestDownShedsFreshPlacements(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	fast := testFacility(t, k, "fast", 1, 80e6)
	slow := testFacility(t, k, "slow", 1, 20e6)
	r.Add(fast)
	r.Add(slow)
	h := newStubHealth()
	r.AttachHealth(h)

	// Unwatched facilities are healthy: fast wins as before.
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil || dec.Facility.ID() != "fast" {
		t.Fatalf("unwatched placement = %+v err=%v, want fast", dec, err)
	}

	// The heartbeat monitor declares fast Down: fresh runs hard-skip it.
	h.set("fast", health.Down)
	h.set("slow", health.Up)
	dec, err = r.Place("run-2", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "slow" || dec.Reason != ReasonLeastECT {
		t.Errorf("fresh placement = %s/%s, want slow/least-ect", dec.Facility.ID(), dec.Reason)
	}
}

func TestUnhealthyFailoverStickyRun(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 20e6)
	r.Add(a)
	r.Add(b)
	h := newStubHealth()
	r.AttachHealth(h)

	if dec, _ := r.Place("run-1", "", 91_000_000); dec.Facility.ID() != "a" {
		t.Fatalf("seed placement not at a: %+v", dec)
	}
	h.set("a", health.Down)
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" || dec.Reason != ReasonFailoverUnhealthy || dec.From != "a" {
		t.Errorf("decision = %+v, want b/failover-unhealthy from a", dec)
	}
	st := r.Stats()
	if st.UnhealthyFailovers != 1 || st.Failovers != 1 || st.FailoversFrom["a"] != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The run is sticky at b now, and returns to a only by fresh choice.
	if dec, _ := r.Place("run-1", "", 0); dec.Facility.ID() != "b" || dec.Reason != ReasonSticky {
		t.Errorf("follow-up = %+v, want sticky b", dec)
	}
}

// TestSuspectSoftAvoided: a Suspect facility loses fresh placements
// while a healthy one is up, but sticky runs stay — one lost heartbeat
// must not pay a re-stage.
func TestSuspectSoftAvoided(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	fast := testFacility(t, k, "fast", 1, 80e6)
	slow := testFacility(t, k, "slow", 1, 20e6)
	r.Add(fast)
	r.Add(slow)
	h := newStubHealth()
	r.AttachHealth(h)

	if dec, _ := r.Place("run-1", "", 91_000_000); dec.Facility.ID() != "fast" {
		t.Fatal("seed placement not at fast")
	}
	h.set("fast", health.Suspect)
	h.set("slow", health.Up)

	// Fresh runs avoid the suspect facility.
	if dec, err := r.Place("run-2", "", 91_000_000); err != nil || dec.Facility.ID() != "slow" {
		t.Errorf("fresh placement = %+v err=%v, want slow", dec, err)
	}
	// The sticky run stays put, with no failover recorded.
	if dec, err := r.Place("run-1", "", 0); err != nil || dec.Facility.ID() != "fast" || dec.Reason != ReasonSticky {
		t.Errorf("sticky placement = %+v err=%v, want stay-put at fast", dec, err)
	}
	if st := r.Stats(); st.Failovers != 0 {
		t.Errorf("suspect must not fail over: %+v", st)
	}
}

// TestAllSuspectStillPlaces: when every facility is Suspect, the
// least-ECT one still takes fresh runs — a wobbly facility beats none.
func TestAllSuspectStillPlaces(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))
	h := newStubHealth()
	r.AttachHealth(h)
	h.set("a", health.Suspect)
	h.set("b", health.Suspect)
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil || dec.Facility == nil {
		t.Fatalf("all-suspect placement failed: %+v err=%v", dec, err)
	}
}

func TestAllDownError(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))
	h := newStubHealth()
	r.AttachHealth(h)
	h.set("a", health.Down)
	h.set("b", health.Down)
	if dec, err := r.Place("run-1", "", 0); err == nil {
		t.Fatalf("placement with every facility Down succeeded: %+v", dec)
	}
	// Sticky runs on a Down facility must not stay put either.
	h.set("a", health.Up)
	if dec, _ := r.Place("run-2", "", 0); dec.Facility.ID() != "a" {
		t.Fatal("setup: run-2 not at a")
	}
	h.set("a", health.Down)
	if _, err := r.Place("run-2", "", 0); err == nil {
		t.Fatal("sticky run stayed on a Down facility with no alternative")
	}
}

// TestDownOutranksDegraded: a facility both Down by heartbeat and
// degraded by link score fails over with the unhealthy cause — liveness
// is the stronger verdict.
func TestDownOutranksDegraded(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))
	q := newStubQuality()
	r.AttachQuality(q, 50)
	h := newStubHealth()
	r.AttachHealth(h)

	if dec, _ := r.Place("run-1", "", 91_000_000); dec.Facility.ID() != "a" {
		t.Fatal("seed placement not at a")
	}
	q.set("a", 5, 1e6) // degraded...
	h.set("a", health.Down)
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reason != ReasonFailoverUnhealthy {
		t.Errorf("reason = %s, want failover-unhealthy (Down outranks degraded)", dec.Reason)
	}
	st := r.Stats()
	if st.UnhealthyFailovers != 1 || st.DegradedFailovers != 0 {
		t.Errorf("stats = %+v, want the unhealthy counter only", st)
	}
}

// TestHealthDisabledIdenticalDecisions is the degeneracy contract: no
// provider, an attached-but-unwatching provider, and an all-Up provider
// must all decide identically to a pre-health registry.
func TestHealthDisabledIdenticalDecisions(t *testing.T) {
	build := func(attach, allUp bool) []string {
		k := sim.NewKernel()
		r := NewRegistry(k, 0)
		r.Add(testFacility(t, k, "a", 1, 80e6))
		r.Add(testFacility(t, k, "b", 1, 20e6))
		if attach {
			h := newStubHealth()
			if allUp {
				h.set("a", health.Up)
				h.set("b", health.Up)
			}
			r.AttachHealth(h)
		}
		var got []string
		for i, key := range []string{"r1", "r2", "r1", "r3", "r2"} {
			dec, err := r.Place(key, "", int64(i)*10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, dec.Facility.ID()+"/"+string(dec.Reason))
		}
		return got
	}
	bare := build(false, false)
	unwatched := build(true, false)
	allUp := build(true, true)
	if !reflect.DeepEqual(bare, unwatched) {
		t.Errorf("unwatched provider changed decisions: %v vs %v", unwatched, bare)
	}
	if !reflect.DeepEqual(bare, allUp) {
		t.Errorf("all-Up provider changed decisions: %v vs %v", allUp, bare)
	}
}

// TestUnhealthyFailoverJournalReplay: the "unhealthy" cause round-trips
// through the durable journal; a restored registry keeps the split.
func TestUnhealthyFailoverJournalReplay(t *testing.T) {
	dir := t.TempDir()
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))
	if _, err := r.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	h := newStubHealth()
	r.AttachHealth(h)
	r.Place("run-1", "", 91_000_000)
	h.set("a", health.Down)
	if dec, err := r.Place("run-1", "", 0); err != nil || dec.Reason != ReasonFailoverUnhealthy {
		t.Fatalf("expected unhealthy failover, got %+v err=%v", dec, err)
	}
	want := r.Stats()
	if want.UnhealthyFailovers != 1 {
		t.Fatalf("UnhealthyFailovers = %d, want 1", want.UnhealthyFailovers)
	}

	k2 := sim.NewKernel()
	r2 := NewRegistry(k2, 0)
	r2.Add(testFacility(t, k2, "a", 1, 80e6))
	r2.Add(testFacility(t, k2, "b", 1, 20e6))
	if _, err := r2.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored stats = %+v, want %+v", got, want)
	}
	if r2.sticky["run-1"] != "b" {
		t.Errorf("restored sticky = %q, want b", r2.sticky["run-1"])
	}
}

func TestSnapshotHealthBlock(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 20e6))

	// No provider: nil health everywhere (monitoring disabled).
	for _, st := range r.Snapshot() {
		if st.Health != nil {
			t.Fatalf("health without provider: %+v", st.Health)
		}
	}

	h := newStubHealth()
	r.AttachHealth(h)
	h.set("a", health.Suspect)
	snaps := r.Snapshot()
	if snaps[0].Health == nil {
		t.Fatal("watched facility lost its health block")
	}
	if snaps[0].Health.State != "suspect" || snaps[0].Health.Checks != 10 || snaps[0].Health.Fails != 3 {
		t.Errorf("a health = %+v", snaps[0].Health)
	}
	if snaps[0].Health.RTTMs != 5 {
		t.Errorf("RTTMs = %v, want 5", snaps[0].Health.RTTMs)
	}
	if snaps[1].Health != nil {
		t.Errorf("unwatched facility should have nil health, got %+v", snaps[1].Health)
	}
}

// TestConcurrentHealthWritersVsPlacement is the -race gate for the
// registry's health seam: monitor writers flip verdicts while placement
// and snapshot readers run.
func TestConcurrentHealthWritersVsPlacement(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 2, 80e6))
	r.Add(testFacility(t, k, "b", 2, 20e6))
	h := newStubHealth()
	r.AttachHealth(h)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			states := []health.State{health.Up, health.Suspect, health.Up, health.Down}
			for i := 0; i < 2000; i++ {
				h.set("a", states[(i+w)%len(states)])
				h.set("b", health.Up)
			}
		}(w)
	}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := r.Place("hammer", "", 10_000_000); err != nil {
					t.Errorf("place: %v", err)
					return
				}
				if i%100 == 0 {
					r.Snapshot()
					r.Stats()
				}
			}
		}(rd)
	}
	wg.Wait()
}
