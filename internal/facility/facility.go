// Package facility is the multi-facility federation layer: it models N
// compute facilities (each with its own batch-scheduled node pool, network
// path from the instrument, and planned outage windows) and places flow
// work across them. The placement policy is least-estimated-completion-time
// over live queue-wait statistics (scheduler.Scheduler.EstimateWait), with
// sticky placement for multi-state runs so data staged at one facility is
// not re-staged gratuitously, and automatic failover to the next-best
// facility when a run's target is down or its queue-wait estimate exceeds
// the configured budget — the queue-wait-aware federation strategy of
// Bicer et al. and the transfer-failover resilience of Welborn et al.
// (PAPERS.md). With a single registered facility the registry degenerates
// to today's pinned behavior: every decision lands on that facility and
// the event timeline is unchanged.
package facility

import (
	"fmt"
	"time"

	"picoprobe/internal/netsim"
	"picoprobe/internal/scheduler"
	"picoprobe/internal/sim"
)

// Window is a half-open interval [Start, End) during which a facility is
// unreachable: no new placements are routed to it, and runs placed there
// fail over at their next state entry. Work already executing drains
// normally (in-flight transfers and jobs complete).
type Window struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Config describes one facility.
type Config struct {
	// ID uniquely names the facility; it doubles as the default transfer
	// endpoint ID.
	ID string
	// Name is the human-readable label.
	Name string
	// Endpoint is the transfer endpoint ID data lands on (default: ID).
	Endpoint string
	// Sched sizes the facility's compute node pool.
	Sched scheduler.Config
	// Path is the network route from the instrument to the facility's
	// storage ingest.
	Path []*netsim.Link
	// StreamCapBps is the effective per-transfer stream throughput toward
	// this facility.
	StreamCapBps float64
	// TransferSetup is the per-task fixed transfer cost.
	TransferSetup time.Duration
	// Outages lists planned unavailability windows.
	Outages []Window
	// PathID names this facility's path in an attached link-quality
	// provider (default: ID).
	PathID string
}

// Facility is one member of a federation: a compute pool plus the network
// profile used to reach it.
type Facility struct {
	cfg Config
	// Sched is the facility's batch scheduler; the compute executor for
	// this facility submits jobs to it.
	Sched *scheduler.Scheduler
}

// New builds a facility and its scheduler on the given runtime.
func New(rt sim.Runtime, cfg Config) (*Facility, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("facility: config missing ID")
	}
	if cfg.Endpoint == "" {
		cfg.Endpoint = cfg.ID
	}
	if cfg.Name == "" {
		cfg.Name = cfg.ID
	}
	if cfg.PathID == "" {
		cfg.PathID = cfg.ID
	}
	return &Facility{cfg: cfg, Sched: scheduler.New(rt, cfg.Sched)}, nil
}

// ID returns the facility's unique identifier.
func (f *Facility) ID() string { return f.cfg.ID }

// Name returns the facility's display name.
func (f *Facility) Name() string { return f.cfg.Name }

// Endpoint returns the transfer endpoint ID data lands on.
func (f *Facility) Endpoint() string { return f.cfg.Endpoint }

// Path returns the network route from the instrument to the facility.
func (f *Facility) Path() []*netsim.Link { return f.cfg.Path }

// PathID returns the facility's path name in a link-quality provider.
func (f *Facility) PathID() string { return f.cfg.PathID }

// StreamCap returns the per-transfer stream cap in bits per second.
func (f *Facility) StreamCap() float64 { return f.cfg.StreamCapBps }

// TransferSetup returns the fixed per-task transfer cost.
func (f *Facility) TransferSetup() time.Duration { return f.cfg.TransferSetup }

// Up reports whether the facility is reachable at t (outside every outage
// window).
func (f *Facility) Up(t time.Time) bool {
	for _, w := range f.cfg.Outages {
		if w.Contains(t) {
			return false
		}
	}
	return true
}

// EstimateTransfer returns the uncontended lower bound for moving bytes to
// this facility: the fixed setup cost plus the stream-cap-limited wire
// time. The placement policy uses it as the transfer half of the
// estimated completion time.
func (f *Facility) EstimateTransfer(bytes int64) time.Duration {
	d := f.cfg.TransferSetup
	if bytes > 0 && f.cfg.StreamCapBps > 0 {
		d += time.Duration(float64(bytes) * 8 / f.cfg.StreamCapBps * float64(time.Second))
	}
	return d
}

// Status is a point-in-time snapshot of one facility, as served by the
// portal's /facilities view.
type Status struct {
	ID       string       `json:"id"`
	Name     string       `json:"name"`
	Up       bool         `json:"up"`
	Nodes    int          `json:"nodes"`
	Busy     int          `json:"busy"`
	Idle     int          `json:"idle"`
	Queued   int          `json:"queue_depth"`
	EstWaitS float64      `json:"est_queue_wait_s"`
	JobsRun  int          `json:"jobs_run"`
	Waits    WaitSummary  `json:"queue_wait"`
	Placed   int          `json:"placements"`
	Failed   int          `json:"failovers_from"`
	Stream   float64      `json:"stream_cap_bps"`
	Outages  []WindowJSON `json:"outages,omitempty"`
	// Quality is the path's smoothed link-quality view; nil when no
	// quality provider is attached (probing disabled) or the path is not
	// yet measured.
	Quality *QualityStatus `json:"quality,omitempty"`
	// Health is the facility's heartbeat liveness verdict; nil when no
	// health monitor is attached or the facility is not watched.
	Health *HealthStatus `json:"health,omitempty"`
}

// QualityStatus is the wire form of a path's link quality.
type QualityStatus struct {
	Score      float64 `json:"score"`
	RTTMs      float64 `json:"rtt_ms"`
	JitterMs   float64 `json:"jitter_ms"`
	Loss       float64 `json:"loss"`
	GoodputBps float64 `json:"goodput_bps"`
	// AgeS is how long ago the last raw sample landed.
	AgeS float64 `json:"last_sample_age_s"`
	// Degraded reports whether the score is below the registry's low-water
	// mark (always false in observe-only mode).
	Degraded bool `json:"degraded"`
}

// HealthStatus is the wire form of a facility's heartbeat verdict.
type HealthStatus struct {
	// State is "up", "suspect" or "down".
	State string `json:"state"`
	// SinceS is how long the facility has held the current state.
	SinceS float64 `json:"since_s"`
	// LastCheckAgeS is how long ago the last check completed.
	LastCheckAgeS float64 `json:"last_check_age_s"`
	// LastErr is the most recent check failure ("" when healthy).
	LastErr string `json:"last_err,omitempty"`
	// Checks/Fails count lifetime checks and failures.
	Checks uint64 `json:"checks"`
	Fails  uint64 `json:"fails"`
	// RTTMs is the most recent successful check's round trip.
	RTTMs float64 `json:"rtt_ms"`
}

// WaitSummary is the queue-wait distribution of completed jobs.
type WaitSummary struct {
	P50S float64 `json:"p50_s"`
	P95S float64 `json:"p95_s"`
	MaxS float64 `json:"max_s"`
}

// WindowJSON is a Window with wire-friendly timestamps.
type WindowJSON struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// snapshot builds the facility's Status at time now. quality and
// health may be nil (probing or heartbeat monitoring disabled).
func (f *Facility) snapshot(now time.Time, placed, failedFrom int, quality *QualityStatus, health *HealthStatus) Status {
	st := f.Sched.Stats()
	w := f.Sched.QueueWaits()
	out := Status{
		ID:       f.cfg.ID,
		Name:     f.cfg.Name,
		Up:       f.Up(now),
		Nodes:    st.Busy + st.Idle + st.Cold + st.Provisioning,
		Busy:     st.Busy,
		Idle:     st.Idle,
		Queued:   st.Queued,
		EstWaitS: f.Sched.EstimateWait().Seconds(),
		JobsRun:  st.JobsRun,
		Placed:   placed,
		Failed:   failedFrom,
		Stream:   f.cfg.StreamCapBps,
	}
	if w.Count() > 0 {
		out.Waits = WaitSummary{
			P50S: w.Percentile(50).Seconds(),
			P95S: w.Percentile(95).Seconds(),
			MaxS: w.Max().Seconds(),
		}
	}
	for _, o := range f.cfg.Outages {
		out.Outages = append(out.Outages, WindowJSON{Start: o.Start, End: o.End})
	}
	out.Quality = quality
	out.Health = health
	return out
}
