package facility

import (
	"reflect"
	"testing"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/sim"
)

// driveHistory puts a registry through placements, an outage failover, a
// budget re-route decline and a re-stage, so every journal op kind fires.
func driveHistory(t *testing.T, k *sim.Kernel, r *Registry, a, b *Facility) {
	t.Helper()
	if _, err := r.Place("run-1", "", 91_000_000); err != nil {
		t.Fatal(err)
	}
	r.RecordLanding("run-1", "a")
	k.RunFor(15 * time.Minute) // into a's outage window
	if dec, err := r.Place("run-1", "", 0); err != nil || dec.Reason != ReasonFailoverOutage {
		t.Fatalf("expected outage failover, got %+v err=%v", dec, err)
	}
	if _, moved := r.MoveLanding("run-1", "b"); !moved {
		t.Fatal("expected a re-stage")
	}
	r.Place("run-2", "", 91_000_000)
	r.Place("run-2", "", 0) // sticky
	k.Run()
}

func journalFixture(t *testing.T, k *sim.Kernel) (*Registry, *Facility, *Facility) {
	t.Helper()
	epoch := k.Now()
	out := Window{Start: epoch.Add(10 * time.Minute), End: epoch.Add(20 * time.Minute)}
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6, out)
	b := testFacility(t, k, "b", 1, 20e6)
	r.Add(a)
	r.Add(b)
	return r, a, b
}

// A registry restored from its journal must reproduce the crashed one's
// sticky placements, landings and every counter — the failover history
// the federated experiment reports.
func TestJournalRestoreReproducesRegistry(t *testing.T) {
	dir := t.TempDir()
	k := sim.NewKernel()
	r, a, b := journalFixture(t, k)
	if _, err := r.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	driveHistory(t, k, r, a, b)
	if err := r.JournalErr(); err != nil {
		t.Fatalf("journal err: %v", err)
	}
	want := r.Stats()
	wantSticky := map[string]string{}
	for run, fac := range r.sticky {
		wantSticky[run] = fac
	}
	wantLanded := map[string]string{}
	for run, fac := range r.landed {
		wantLanded[run] = fac
	}
	// No CloseJournal: simulate a crash by just abandoning the store (the
	// per-append fsync already put every op on disk).

	k2 := sim.NewKernel()
	r2, _, _ := journalFixture(t, k2)
	stats, err := r2.OpenJournal(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 {
		t.Fatal("no journal records replayed")
	}
	if got := r2.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored stats = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(r2.sticky, wantSticky) {
		t.Errorf("restored sticky = %v, want %v", r2.sticky, wantSticky)
	}
	if !reflect.DeepEqual(r2.landed, wantLanded) {
		t.Errorf("restored landed = %v, want %v", r2.landed, wantLanded)
	}
	// The restored history keeps steering placements: run-1 is sticky at b.
	dec, err := r2.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" || dec.Reason != ReasonSticky {
		t.Errorf("restored placement = %s/%s, want b/sticky", dec.Facility.ID(), dec.Reason)
	}
	r2.CloseJournal()
}

// Compaction folds the journal into a snapshot; recovery from snapshot +
// empty tail must be identical to replaying the full op history.
func TestJournalCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	k := sim.NewKernel()
	r, a, b := journalFixture(t, k)
	if _, err := r.OpenJournal(dir, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	driveHistory(t, k, r, a, b)
	if err := r.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction ops land in the fresh WAL tail.
	r.Place("run-3", "", 91_000_000)
	want3 := r.Stats()
	if err := r.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	k2 := sim.NewKernel()
	r2, _, _ := journalFixture(t, k2)
	stats, err := r2.OpenJournal(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLSN == 0 {
		t.Fatal("recovery did not use the snapshot")
	}
	if got := r2.Stats(); !reflect.DeepEqual(got, want3) {
		t.Errorf("restored stats = %+v, want %+v", got, want3)
	}
	r2.CloseJournal()
}

// Journaling failures (full disk) must not break placement: Place keeps
// working and the failure surfaces through JournalErr.
func TestJournalFailureDoesNotBlockPlacement(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	if _, err := r.OpenJournal(t.TempDir(), durable.Options{}); err != nil {
		t.Fatal(err)
	}
	// Close the underlying store out from under the registry so every
	// append fails.
	r.mu.Lock()
	r.journal.Close()
	r.mu.Unlock()
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil {
		t.Fatalf("placement failed on journal error: %v", err)
	}
	if dec.Facility.ID() != "a" {
		t.Fatalf("decision = %+v", dec)
	}
	if r.JournalErr() == nil {
		t.Error("journal failure not surfaced")
	}
	// Submit callbacks may still be pending.
	k.Run()
}
