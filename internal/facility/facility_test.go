package facility

import (
	"testing"
	"time"

	"picoprobe/internal/scheduler"
	"picoprobe/internal/sim"
)

func testFacility(t *testing.T, rt sim.Runtime, id string, nodes int, streamCap float64, outages ...Window) *Facility {
	t.Helper()
	f, err := New(rt, Config{
		ID:   id,
		Name: id,
		Sched: scheduler.Config{
			Nodes:          nodes,
			ProvisionDelay: 45 * time.Second,
			CacheWarmup:    30 * time.Second,
			ReuseNodes:     true,
		},
		StreamCapBps:  streamCap,
		TransferSetup: 2 * time.Second,
		Outages:       outages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegistryValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, Config{}); err == nil {
		t.Error("facility without ID accepted")
	}
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6)
	if err := r.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(testFacility(t, k, "a", 1, 80e6)); err == nil {
		t.Error("duplicate facility accepted")
	}
	if _, err := r.Place("run-1", "nowhere", 0); err == nil {
		t.Error("unknown constraint accepted")
	}
}

func TestLeastECTPlacementPrefersFasterLink(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	fast := testFacility(t, k, "fast", 1, 80e6)
	slow := testFacility(t, k, "slow", 1, 20e6)
	r.Add(fast)
	r.Add(slow)
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "fast" || dec.Reason != ReasonLeastECT {
		t.Errorf("decision = %s/%s, want fast/least-ect", dec.Facility.ID(), dec.Reason)
	}
}

func TestLeastECTPlacementAvoidsQueuedFacility(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 80e6)
	r.Add(a)
	r.Add(b)
	// Back up facility a with a long job plus a queued one.
	a.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	a.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	dec, err := r.Place("run-1", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" {
		t.Errorf("placed at %s despite a's queue", dec.Facility.ID())
	}
	k.Run()
}

func TestStickyPlacementAcrossStates(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 80e6))
	first, err := r.Place("run-1", "", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Facility.ID() != first.Facility.ID() || second.Reason != ReasonSticky {
		t.Errorf("second state moved: %s/%s", second.Facility.ID(), second.Reason)
	}
}

func TestConstraintWinsOverBestChoice(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "fast", 1, 80e6))
	r.Add(testFacility(t, k, "slow", 1, 10e6))
	dec, err := r.Place("run-1", "slow", 91_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "slow" || dec.Reason != ReasonConstraint {
		t.Errorf("decision = %s/%s, want slow/constraint", dec.Facility.ID(), dec.Reason)
	}
}

func TestOutageFailoverAndReturn(t *testing.T) {
	k := sim.NewKernel()
	epoch := k.Now()
	out := Window{Start: epoch.Add(10 * time.Minute), End: epoch.Add(20 * time.Minute)}
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 1, 80e6, out)
	b := testFacility(t, k, "b", 1, 20e6)
	r.Add(a)
	r.Add(b)

	// Before the outage the run lands on a (faster link).
	dec, _ := r.Place("run-1", "", 91_000_000)
	if dec.Facility.ID() != "a" {
		t.Fatalf("initial placement = %s", dec.Facility.ID())
	}
	// Inside the window a sticky state fails over to b.
	k.RunFor(15 * time.Minute)
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" || dec.Reason != ReasonFailoverOutage || dec.From != "a" {
		t.Errorf("failover decision = %+v", dec)
	}
	// The sticky placement moved with the failover.
	dec, _ = r.Place("run-1", "", 0)
	if dec.Facility.ID() != "b" || dec.Reason != ReasonSticky {
		t.Errorf("post-failover decision = %s/%s", dec.Facility.ID(), dec.Reason)
	}
	// Fresh runs during the window avoid a entirely.
	dec, _ = r.Place("run-2", "", 91_000_000)
	if dec.Facility.ID() != "b" {
		t.Errorf("fresh placement during outage = %s", dec.Facility.ID())
	}
	// After the window new runs return to a.
	k.RunFor(10 * time.Minute)
	dec, _ = r.Place("run-3", "", 91_000_000)
	if dec.Facility.ID() != "a" {
		t.Errorf("post-outage placement = %s", dec.Facility.ID())
	}
	st := r.Stats()
	if st.Failovers != 1 || st.OutageFailovers != 1 || st.FailoversFrom["a"] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBudgetFailover(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, time.Minute)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 80e6)
	r.Add(a)
	r.Add(b)
	dec, _ := r.Place("run-1", "", 91_000_000)
	if dec.Facility.ID() != "a" {
		t.Fatalf("initial placement = %s", dec.Facility.ID())
	}
	// Blow a's queue-wait estimate past the one-minute budget.
	for i := 0; i < 3; i++ {
		a.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	}
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "b" || dec.Reason != ReasonFailoverBudget || dec.From != "a" {
		t.Errorf("budget failover decision = %+v", dec)
	}
	if st := r.Stats(); st.BudgetFailovers != 1 {
		t.Errorf("stats = %+v", st)
	}
	k.Run()
}

// TestBudgetFailoverDeclinesWorseDestination: exceeding the budget does
// not justify moving to a facility whose queue is even longer — the run
// stays put instead of paying a re-stage for a worse wait.
func TestBudgetFailoverDeclinesWorseDestination(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, time.Minute)
	a := testFacility(t, k, "a", 1, 80e6)
	b := testFacility(t, k, "b", 1, 80e6)
	r.Add(a)
	r.Add(b)
	dec, _ := r.Place("run-1", "", 91_000_000)
	if dec.Facility.ID() != "a" {
		t.Fatalf("initial placement = %s", dec.Facility.ID())
	}
	// a goes over budget; b is backed up even further.
	for i := 0; i < 3; i++ {
		a.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	}
	for i := 0; i < 6; i++ {
		b.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	}
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "a" || dec.Reason != ReasonSticky {
		t.Errorf("decision = %s/%s, want a/sticky (b is worse)", dec.Facility.ID(), dec.Reason)
	}
	if st := r.Stats(); st.Failovers != 0 {
		t.Errorf("stats = %+v", st)
	}
	k.Run()
}

func TestBudgetFailoverStaysPutWhenAlone(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, time.Minute)
	a := testFacility(t, k, "a", 1, 80e6)
	r.Add(a)
	r.Place("run-1", "", 91_000_000)
	for i := 0; i < 3; i++ {
		a.Sched.Submit("e", 10*time.Minute, func(scheduler.JobReport) {})
	}
	// Over budget but nowhere else to go: the run stays.
	dec, err := r.Place("run-1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Facility.ID() != "a" || dec.Reason != ReasonSticky {
		t.Errorf("decision = %s/%s, want a/sticky", dec.Facility.ID(), dec.Reason)
	}
	if st := r.Stats(); st.Failovers != 0 {
		t.Errorf("stats = %+v", st)
	}
	k.Run()
}

func TestAllFacilitiesDown(t *testing.T) {
	k := sim.NewKernel()
	epoch := k.Now()
	out := Window{Start: epoch, End: epoch.Add(time.Hour)}
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6, out))
	if _, err := r.Place("run-1", "", 0); err == nil {
		t.Error("placement succeeded with every facility down")
	}
}

func TestLandingTracksRestageSource(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry(k, 0)
	r.Add(testFacility(t, k, "a", 1, 80e6))
	r.Add(testFacility(t, k, "b", 1, 80e6))
	if got := r.Landed("run-1"); got != "" {
		t.Errorf("landed before any transfer = %q", got)
	}
	// Moving before anything landed is a no-op (nothing to re-stage).
	if from, moved := r.MoveLanding("run-1", "b"); moved || from != "" {
		t.Errorf("move before landing = (%q, %v)", from, moved)
	}
	r.RecordLanding("run-1", "a")
	if got := r.Landed("run-1"); got != "a" {
		t.Errorf("landed = %q", got)
	}
	// First move re-stages and reports the source exactly once.
	if from, moved := r.MoveLanding("run-1", "b"); !moved || from != "a" {
		t.Errorf("move = (%q, %v), want (a, true)", from, moved)
	}
	// A concurrent sibling arriving at the same facility must not charge
	// a second re-stage.
	if _, moved := r.MoveLanding("run-1", "b"); moved {
		t.Error("duplicate move charged a second re-stage")
	}
	if st := r.Stats(); st.Restages != 1 {
		t.Errorf("restages = %d, want 1", st.Restages)
	}
}

func TestSnapshotReflectsLoadAndOutage(t *testing.T) {
	k := sim.NewKernel()
	epoch := k.Now()
	out := Window{Start: epoch, End: epoch.Add(time.Hour)}
	r := NewRegistry(k, 0)
	a := testFacility(t, k, "a", 2, 80e6)
	b := testFacility(t, k, "b", 1, 20e6, out)
	r.Add(a)
	r.Add(b)
	r.Place("run-1", "", 91_000_000)
	a.Sched.Submit("e", 10*time.Second, func(scheduler.JobReport) {})
	a.Sched.Submit("e", 10*time.Second, func(scheduler.JobReport) {})
	a.Sched.Submit("e", 10*time.Second, func(scheduler.JobReport) {})
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	// All three jobs are still queued at t=0 while the two cold nodes
	// provision on their behalf.
	if snap[0].ID != "a" || !snap[0].Up || snap[0].Nodes != 2 || snap[0].Queued != 3 {
		t.Errorf("a status = %+v", snap[0])
	}
	if snap[0].Placed != 1 {
		t.Errorf("a placements = %d", snap[0].Placed)
	}
	if snap[1].ID != "b" || snap[1].Up || len(snap[1].Outages) != 1 {
		t.Errorf("b status = %+v", snap[1])
	}
	k.Run()
	snap = r.Snapshot()
	if snap[0].JobsRun != 3 || snap[0].Waits.MaxS <= 0 {
		t.Errorf("post-run a status = %+v", snap[0])
	}
}
