package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{600, 512, 512}
	if s.Elems() != 600*512*512 {
		t.Errorf("Elems = %d", s.Elems())
	}
	if s.String() != "(600, 512, 512)" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Equal(Shape{600, 512, 512}) || s.Equal(Shape{600, 512}) {
		t.Error("Equal misbehaves")
	}
	if (Shape{}).Elems() != 0 {
		t.Error("empty shape should have 0 elems")
	}
	if (Shape{}).ElemsOr1() != 1 {
		t.Error("empty shape ElemsOr1 should be 1")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	d := New(3, 4, 5)
	d.Set(7.5, 1, 2, 3)
	if got := d.At(1, 2, 3); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	// Row-major layout: offset of (1,2,3) in (3,4,5) is 1*20+2*5+3 = 33.
	if d.Data()[33] != 7.5 {
		t.Error("row-major offset mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(2, 2)
	for _, fn := range []func(){
		func() { d.At(2, 0) },
		func() { d.At(0, -1) },
		func() { d.At(0) },
		func() { New(0, 3) },
		func() { d.Frame(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSumAxisIntensityAndSpectrum(t *testing.T) {
	// (H=2, W=3, C=4) cube with value h*100 + w*10 + c.
	d := New(2, 3, 4)
	for h := 0; h < 2; h++ {
		for w := 0; w < 3; w++ {
			for c := 0; c < 4; c++ {
				d.Set(float64(h*100+w*10+c), h, w, c)
			}
		}
	}
	intensity := d.SumAxis(2) // (H, W)
	if !intensity.Shape().Equal(Shape{2, 3}) {
		t.Fatalf("intensity shape = %v", intensity.Shape())
	}
	// Sum over c of h*100+w*10+c = 4*(h*100+w*10) + 6.
	if got, want := intensity.At(1, 2), float64(4*(100+20)+6); got != want {
		t.Errorf("intensity(1,2) = %v, want %v", got, want)
	}
	spectrum := d.SumAxis(0).SumAxis(0) // (C)
	if !spectrum.Shape().Equal(Shape{4}) {
		t.Fatalf("spectrum shape = %v", spectrum.Shape())
	}
	// Sum over h,w of h*100+w*10+c = 300 + 2*30... compute directly:
	want := 0.0
	for h := 0; h < 2; h++ {
		for w := 0; w < 3; w++ {
			want += float64(h*100 + w*10 + 2)
		}
	}
	if got := spectrum.At(2); got != want {
		t.Errorf("spectrum(2) = %v, want %v", got, want)
	}
}

func TestSumAxisMiddle(t *testing.T) {
	d := New(2, 3, 2)
	for i := range d.Data() {
		d.Data()[i] = float64(i)
	}
	r := d.SumAxis(1)
	if !r.Shape().Equal(Shape{2, 2}) {
		t.Fatalf("shape = %v", r.Shape())
	}
	// r[0,0] = d[0,0,0]+d[0,1,0]+d[0,2,0] = 0+2+4 = 6
	if r.At(0, 0) != 6 {
		t.Errorf("r(0,0) = %v, want 6", r.At(0, 0))
	}
}

func TestFrameIsView(t *testing.T) {
	d := New(3, 2, 2)
	f := d.Frame(1)
	f.Set(9, 0, 1)
	if d.At(1, 0, 1) != 9 {
		t.Error("Frame should share storage with the parent")
	}
	if !f.Shape().Equal(Shape{2, 2}) {
		t.Errorf("frame shape = %v", f.Shape())
	}
}

func TestReshape(t *testing.T) {
	d := New(4, 6)
	r, err := d.Reshape(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	r.Set(5, 1, 0) // element 12 in linear order = (2,0) in the original
	if d.At(2, 0) != 5 {
		t.Error("Reshape should be a view")
	}
	if _, err := d.Reshape(5, 5); err == nil {
		t.Error("mismatched reshape should fail")
	}
}

func TestToUint8QuantizationAndClamp(t *testing.T) {
	d := FromData([]float64{-10, 0, 127.5, 255, 1000}, 5)
	got := d.ToUint8(0, 255)
	want := []uint8{0, 0, 128, 255, 255}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Degenerate range maps everything to 0.
	flat := FromData([]float64{1, 2, 3}, 3).ToUint8(5, 5)
	for _, v := range flat {
		if v != 0 {
			t.Error("degenerate range should clamp to 0")
		}
	}
}

func TestMinMaxMeanScale(t *testing.T) {
	d := FromData([]float64{3, -1, 4, 2}, 4)
	min, max := d.MinMax()
	if min != -1 || max != 4 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if d.Mean() != 2 {
		t.Errorf("Mean = %v", d.Mean())
	}
	d.Scale(2)
	if d.Sum() != 16 {
		t.Errorf("Sum after Scale = %v", d.Sum())
	}
}

// Property: summing over all axes in any order equals the total sum.
func TestPropertySumAxisTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		shape := []int{rng.Intn(5) + 1, rng.Intn(5) + 1, rng.Intn(5) + 1}
		d := New(shape...)
		for i := range d.Data() {
			d.Data()[i] = rng.NormFloat64()
		}
		total := d.Sum()
		axis := rng.Intn(3)
		reduced := d.SumAxis(axis)
		if math.Abs(reduced.Sum()-total) > 1e-9*math.Max(1, math.Abs(total)) {
			t.Fatalf("trial %d: SumAxis(%d) changes total: %v vs %v", trial, axis, reduced.Sum(), total)
		}
	}
}

// Property: parallel reduction equals the sequential reference for large
// tensors (exercises the parallel path above the threshold).
func TestParallelSumAxisMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := New(64, 64, 32) // 131072 elems > parallelThreshold
	for i := range d.Data() {
		d.Data()[i] = rng.Float64()
	}
	got := d.SumAxis(2)
	// Sequential reference.
	want := New(64, 64)
	for h := 0; h < 64; h++ {
		for w := 0; w < 64; w++ {
			s := 0.0
			for c := 0; c < 32; c++ {
				s += d.At(h, w, c)
			}
			want.Set(s, h, w)
		}
	}
	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-9 {
			t.Fatalf("parallel/sequential mismatch at %d", i)
		}
	}
}

// Property: Encode/Decode round-trips exactly for float64 and within
// quantization error for integer dtypes.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		enc := Encode(vals, Float64)
		dec, err := Decode(enc, Float64)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntegerDTypeClamping(t *testing.T) {
	vals := []float64{-5, 0, 100, 70000}
	dec, err := Decode(Encode(vals, Uint16), Uint16)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 100, 65535}
	for i := range want {
		if dec[i] != want[i] {
			t.Errorf("uint16 roundtrip[%d] = %v, want %v", i, dec[i], want[i])
		}
	}
	dec8, _ := Decode(Encode(vals, Uint8), Uint8)
	want8 := []float64{0, 0, 100, 255}
	for i := range want8 {
		if dec8[i] != want8[i] {
			t.Errorf("uint8 roundtrip[%d] = %v, want %v", i, dec8[i], want8[i])
		}
	}
}

func TestDTypeNamesAndSizes(t *testing.T) {
	for _, d := range []DType{Float64, Float32, Uint8, Uint16, Int32, Int64} {
		parsed, err := ParseDType(d.String())
		if err != nil || parsed != d {
			t.Errorf("ParseDType(%q) = %v, %v", d.String(), parsed, err)
		}
		if d.Size() <= 0 {
			t.Errorf("%v size = %d", d, d.Size())
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("unknown dtype should error")
	}
}

func TestDecodeBadLength(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, Float64); err == nil {
		t.Error("Decode with misaligned length should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := FromData([]float64{1, 2, 3, 4}, 2, 2)
	c := d.Clone()
	c.Set(99, 0, 0)
	if d.At(0, 0) == 99 {
		t.Error("Clone should not share storage")
	}
}
