// Package tensor implements the dense n-dimensional arrays used for
// microscopy data: hyperspectral cubes (H, W, C) and spatiotemporal series
// (T, H, W). It provides row-major storage, axis reductions (parallelized
// across output rows), frame slicing without copying, and the quantizing
// fp64→uint8 cast whose cost the paper identifies as the dominant part of
// the spatiotemporal compute stage.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
)

// parallelThreshold is the element count above which reductions and casts
// fan out across CPUs. Below it the goroutine overhead dominates.
const parallelThreshold = 1 << 16

// Shape describes the extent of each axis of a tensor.
type Shape []int

// Elems returns the total number of elements, or 0 for an empty shape.
func (s Shape) Elems() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the shape as "(600, 512, 512)".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// validate panics if any axis is non-positive.
func (s Shape) validate() {
	for i, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: axis %d has non-positive extent %d", i, d))
		}
	}
}

// Dense is a row-major n-dimensional array of float64. Microscopy detectors
// emit various integer and float encodings (see DType); they are widened to
// float64 for analysis, matching the paper's fp64 pipeline.
type Dense struct {
	shape Shape
	data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Dense {
	s := Shape(shape)
	s.validate()
	return &Dense{shape: s, data: make([]float64, s.Elems())}
}

// FromData wraps an existing slice as a tensor. The slice is used directly
// (no copy); its length must equal the shape's element count.
func FromData(data []float64, shape ...int) *Dense {
	s := Shape(shape)
	s.validate()
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), s, s.Elems()))
	}
	return &Dense{shape: s, data: data}
}

// Shape returns the tensor's shape. The caller must not modify it.
func (d *Dense) Shape() Shape { return d.shape }

// Rank returns the number of axes.
func (d *Dense) Rank() int { return len(d.shape) }

// Data returns the underlying storage in row-major order.
func (d *Dense) Data() []float64 { return d.data }

// offset computes the linear index for the given coordinates.
func (d *Dense) offset(idx []int) int {
	if len(idx) != len(d.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(d.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= d.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) on axis %d", x, d.shape[i], i))
		}
		off = off*d.shape[i] + x
	}
	return off
}

// At returns the element at the given coordinates.
func (d *Dense) At(idx ...int) float64 { return d.data[d.offset(idx)] }

// Set stores v at the given coordinates.
func (d *Dense) Set(v float64, idx ...int) { d.data[d.offset(idx)] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	data := make([]float64, len(d.data))
	copy(data, d.data)
	shape := make(Shape, len(d.shape))
	copy(shape, d.shape)
	return &Dense{shape: shape, data: data}
}

// Reshape returns a view of the same data with a new shape of equal element
// count.
func (d *Dense) Reshape(shape ...int) (*Dense, error) {
	s := Shape(shape)
	s.validate()
	if s.Elems() != len(d.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			d.shape, len(d.data), s, s.Elems())
	}
	return &Dense{shape: s, data: d.data}, nil
}

// Frame returns a view (sharing storage) of the i-th slice along axis 0:
// for a (T, H, W) series it returns frame i as an (H, W) tensor.
func (d *Dense) Frame(i int) *Dense {
	if len(d.shape) < 2 {
		panic("tensor: Frame requires rank >= 2")
	}
	if i < 0 || i >= d.shape[0] {
		panic(fmt.Sprintf("tensor: frame %d out of range [0,%d)", i, d.shape[0]))
	}
	stride := Shape(d.shape[1:]).Elems()
	return &Dense{shape: d.shape[1:], data: d.data[i*stride : (i+1)*stride]}
}

// Sum returns the sum of all elements.
func (d *Dense) Sum() float64 {
	total := 0.0
	for _, v := range d.data {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean of all elements.
func (d *Dense) Mean() float64 {
	if len(d.data) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.data))
}

// MinMax returns the smallest and largest elements.
func (d *Dense) MinMax() (min, max float64) {
	if len(d.data) == 0 {
		return 0, 0
	}
	min, max = d.data[0], d.data[0]
	for _, v := range d.data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Scale multiplies every element by f in place and returns the receiver.
func (d *Dense) Scale(f float64) *Dense {
	for i := range d.data {
		d.data[i] *= f
	}
	return d
}

// SumAxis reduces the tensor along the given axis, returning a tensor whose
// shape is the input shape with that axis removed. For a hyperspectral cube
// (H, W, C), SumAxis(2) yields the intensity image and successive
// reductions over the pixel axes yield the aggregate spectrum. Large
// reductions are parallelized across output rows; the result is
// deterministic because each output element is accumulated by exactly one
// goroutine in index order.
func (d *Dense) SumAxis(axis int) *Dense {
	if axis < 0 || axis >= len(d.shape) {
		panic(fmt.Sprintf("tensor: SumAxis axis %d out of range for rank %d", axis, len(d.shape)))
	}
	if len(d.shape) == 1 {
		return FromData([]float64{d.Sum()}, 1)
	}
	outShape := make(Shape, 0, len(d.shape)-1)
	outShape = append(outShape, d.shape[:axis]...)
	outShape = append(outShape, d.shape[axis+1:]...)

	outer := Shape(d.shape[:axis]).ElemsOr1()
	n := d.shape[axis]
	inner := Shape(d.shape[axis+1:]).ElemsOr1()

	out := make([]float64, outer*inner)
	reduce := func(oLo, oHi int) {
		for o := oLo; o < oHi; o++ {
			dst := out[o*inner : (o+1)*inner]
			for j := 0; j < n; j++ {
				src := d.data[(o*n+j)*inner : (o*n+j+1)*inner]
				for i, v := range src {
					dst[i] += v
				}
			}
		}
	}
	parallelRanges(outer, len(d.data), reduce)
	return FromData(out, outShape...)
}

// ElemsOr1 is Elems but treats the empty shape as a single element, which is
// the correct multiplicative identity for stride computations.
func (s Shape) ElemsOr1() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// ToUint8 quantizes the tensor into 8-bit samples, mapping [lo, hi] linearly
// onto [0, 255] with clamping. This is the paper's "slow data type casting
// operation from fp64 to uint8" on the EMD→video path; it is parallelized
// across chunks.
func (d *Dense) ToUint8(lo, hi float64) []uint8 {
	return d.ToUint8Into(nil, lo, hi)
}

// ToUint8Into is ToUint8 writing into dst, which is reused when its
// capacity suffices and grown otherwise; the quantized samples are returned
// as dst[:Elems]. Hot loops pass the previous frame's buffer back in so the
// cast allocates only once per pipeline, not once per frame.
func (d *Dense) ToUint8Into(dst []uint8, lo, hi float64) []uint8 {
	if cap(dst) < len(d.data) {
		dst = make([]uint8, len(d.data))
	}
	out := dst[:len(d.data)]
	scale := 0.0
	if hi > lo {
		scale = 255.0 / (hi - lo)
	}
	// Call quantizeRange directly when the cast will not fan out; building
	// the closure for parallelRanges costs an allocation per frame.
	if !shouldParallel(len(d.data), len(d.data)) {
		quantizeRange(out, d.data, lo, scale, 0, len(d.data))
	} else {
		parallelRanges(len(d.data), len(d.data), func(start, end int) {
			quantizeRange(out, d.data, lo, scale, start, end)
		})
	}
	return out
}

func quantizeRange(out []uint8, data []float64, lo, scale float64, start, end int) {
	for i := start; i < end; i++ {
		v := (data[i] - lo) * scale
		switch {
		case v <= 0:
			out[i] = 0
		case v >= 255:
			out[i] = 255
		default:
			out[i] = uint8(math.Round(v))
		}
	}
}

// AppendUint8 quantizes the tensor like ToUint8 and appends the samples to
// dst, returning the extended slice.
func (d *Dense) AppendUint8(dst []uint8, lo, hi float64) []uint8 {
	base := len(dst)
	if cap(dst)-base < len(d.data) {
		grown := make([]uint8, base, base+len(d.data))
		copy(grown, dst)
		dst = grown
	}
	d.ToUint8Into(dst[base:base+len(d.data)], lo, hi)
	return dst[:base+len(d.data)]
}

// shouldParallel is the single fan-out policy shared by parallelRanges and
// the allocation-free fast paths that bypass it: parallelize only when the
// touched work is large enough and more than one CPU is available.
func shouldParallel(n, work int) bool {
	return work >= parallelThreshold && runtime.GOMAXPROCS(0) > 1 && n > 1
}

// parallelRanges splits [0, n) into contiguous chunks and runs fn on each,
// in parallel when work (total touched elements) is large enough.
func parallelRanges(n, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if !shouldParallel(n, work) {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
