package tensor

import (
	"bytes"
	"testing"
)

func TestToUint8IntoReusesBuffer(t *testing.T) {
	d := FromData([]float64{0, 128, 255, 300}, 4)
	want := d.ToUint8(0, 255)
	buf := make([]uint8, 0, 16)
	got := d.ToUint8Into(buf, 0, 255)
	if &got[0] != &buf[:1][0] {
		t.Error("sufficient-capacity buffer was not reused")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ToUint8Into = %v, ToUint8 = %v", got, want)
	}
	// Short buffer grows transparently.
	grown := d.ToUint8Into(make([]uint8, 0, 1), 0, 255)
	if !bytes.Equal(grown, want) {
		t.Errorf("grown ToUint8Into = %v, want %v", grown, want)
	}
}

func TestAppendUint8(t *testing.T) {
	a := FromData([]float64{0, 255}, 2)
	b := FromData([]float64{128, 64}, 2)
	out := a.AppendUint8(nil, 0, 255)
	out = b.AppendUint8(out, 0, 255)
	want := append(a.ToUint8(0, 255), b.ToUint8(0, 255)...)
	if !bytes.Equal(out, want) {
		t.Errorf("AppendUint8 chain = %v, want %v", out, want)
	}
	// Appending into spare capacity must not reallocate.
	buf := make([]uint8, 0, 8)
	out = a.AppendUint8(buf, 0, 255)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendUint8 reallocated despite spare capacity")
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	vals := []float64{0, 1.5, -3, 65000, 1e9}
	for _, dt := range []DType{Float64, Float32, Uint8, Uint16, Int32, Int64} {
		want := Encode(vals, dt)
		got := AppendEncode([]byte("prefix"), vals, dt)
		if string(got[:6]) != "prefix" || !bytes.Equal(got[6:], want) {
			t.Errorf("%s: AppendEncode mismatch", dt)
		}
	}
}

func TestDecodeIntoValidation(t *testing.T) {
	raw := Encode([]float64{1, 2, 3}, Float32)
	dst := make([]float64, 3)
	if err := DecodeInto(dst, raw, Float32); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Errorf("DecodeInto = %v", dst)
	}
	if err := DecodeInto(make([]float64, 2), raw, Float32); err == nil {
		t.Error("short destination accepted")
	}
	if err := DecodeInto(dst, raw[:5], Float32); err == nil {
		t.Error("ragged byte length accepted")
	}
}
