package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType identifies the on-disk element encoding of a dataset. Detectors
// write compact integer formats; analysis widens everything to float64.
type DType uint8

// Supported element encodings.
const (
	Float64 DType = iota
	Float32
	Uint8
	Uint16
	Int32
	Int64
)

// Size returns the encoded size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float64, Int64:
		return 8
	case Float32, Int32:
		return 4
	case Uint16:
		return 2
	case Uint8:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", d))
	}
}

// String returns the NumPy-style name of the dtype.
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Uint8:
		return "uint8"
	case Uint16:
		return "uint16"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// ParseDType maps a dtype name back to its DType.
func ParseDType(s string) (DType, error) {
	for _, d := range []DType{Float64, Float32, Uint8, Uint16, Int32, Int64} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Encode serializes values into little-endian bytes of the given dtype.
// Values outside an integer dtype's range are clamped; this mirrors how
// detector firmware saturates rather than wraps.
func Encode(values []float64, dt DType) []byte {
	return AppendEncode(nil, values, dt)
}

// AppendEncode serializes values into little-endian bytes of the given
// dtype, appending to dst and returning the extended slice. Callers on hot
// paths reuse dst across frames so the encode step allocates nothing once
// the buffer has grown to chunk size.
func AppendEncode(dst []byte, values []float64, dt DType) []byte {
	base := len(dst)
	need := len(values) * dt.Size()
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[base : base+need]
	switch dt {
	case Float64:
		for i, v := range values {
			binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
		}
	case Float32:
		for i, v := range values {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
		}
	case Uint8:
		for i, v := range values {
			out[i] = uint8(clamp(v, 0, math.MaxUint8))
		}
	case Uint16:
		for i, v := range values {
			binary.LittleEndian.PutUint16(out[i*2:], uint16(clamp(v, 0, math.MaxUint16)))
		}
	case Int32:
		for i, v := range values {
			binary.LittleEndian.PutUint32(out[i*4:], uint32(int32(clamp(v, math.MinInt32, math.MaxInt32))))
		}
	case Int64:
		for i, v := range values {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(int64(clamp(v, math.MinInt64, math.MaxInt64))))
		}
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", dt))
	}
	return dst[:base+need]
}

// Decode widens little-endian bytes of the given dtype to float64.
func Decode(raw []byte, dt DType) ([]float64, error) {
	sz := dt.Size()
	if len(raw)%sz != 0 {
		return nil, fmt.Errorf("tensor: %d bytes is not a multiple of %s element size %d",
			len(raw), dt, sz)
	}
	out := make([]float64, len(raw)/sz)
	if err := DecodeInto(out, raw, dt); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto widens little-endian bytes of the given dtype to float64 into
// dst, which must hold exactly len(raw)/dt.Size() elements. It is the
// allocation-free core of Decode, used by the streaming EMD reader to fill
// caller-owned (typically pooled) buffers.
func DecodeInto(dst []float64, raw []byte, dt DType) error {
	sz := dt.Size()
	if len(raw)%sz != 0 {
		return fmt.Errorf("tensor: %d bytes is not a multiple of %s element size %d",
			len(raw), dt, sz)
	}
	if len(dst) != len(raw)/sz {
		return fmt.Errorf("tensor: destination holds %d elements, want %d", len(dst), len(raw)/sz)
	}
	out := dst
	switch dt {
	case Float64:
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case Float32:
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Uint8:
		for i := range out {
			out[i] = float64(raw[i])
		}
	case Uint16:
		for i := range out {
			out[i] = float64(binary.LittleEndian.Uint16(raw[i*2:]))
		}
	case Int32:
		for i := range out {
			out[i] = float64(int32(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Int64:
		for i := range out {
			out[i] = float64(int64(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	default:
		return fmt.Errorf("tensor: unknown dtype %d", dt)
	}
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
