package obs

import (
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pp_total", "a counter")
	g := r.Gauge("pp_gauge", "a gauge")
	v := r.CounterVec("pp_route_total", "per route", "route", "code")
	c.Add(3)
	g.Set(-2)
	v.With("/api/search", "200").Inc()
	v.With("/api/search", "200").Inc()
	v.With("/", "304").Inc()

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pp_total a counter",
		"# TYPE pp_total counter",
		"pp_total 3",
		"# TYPE pp_gauge gauge",
		"pp_gauge -2",
		`pp_route_total{route="/",code="304"} 1`,
		`pp_route_total{route="/api/search",code="200"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Every non-comment exposition line must match the Prometheus text
// grammar: metric name, optional label set, and a numeric value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "x").Inc()
	r.GaugeVec("b_gauge", "y", "k").With(`weird"label\n`).Set(7)
	h := r.Histogram("c_seconds", "z", nil)
	h.Observe(0.003)
	h.Observe(42) // beyond the last bound: +Inf bucket

	var sb strings.Builder
	r.WriteTo(&sb)
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as Prometheus text format: %q", line)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := h.Sum(); math.Abs(got-5.555) > 1e-9 {
		t.Errorf("sum = %v, want 5.555", got)
	}
}

// The HDR layout must bound relative quantile error: estimates against a
// heavy-tailed sample stay within one sub-bucket (~1/32) of the exact
// order statistic.
func TestHDRPercentileAccuracy(t *testing.T) {
	h := NewHistogram(HDRBuckets(1e-6, 100, 32))
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200_000)
	for i := range samples {
		// Log-normal-ish latency: most around 1ms, tail to seconds.
		samples[i] = 0.001 * math.Exp(rng.NormFloat64()*1.5)
		h.Observe(samples[i])
	}
	sort.Float64s(samples)
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("p%v = %v, exact %v (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %v, want 8.0", h.Sum())
	}
}
