package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets with atomic adds — no
// locks, no retained samples. Buckets are defined by ascending upper
// bounds; an implicit +Inf bucket catches the tail. Percentile estimates
// interpolate linearly inside the winning bucket, so resolution is set
// by the bucket layout: the default HDR-style log-linear layout (32
// linear sub-buckets per power of two) keeps relative error under ~3%
// across the whole range, the property HdrHistogram provides and the
// property coordinated-omission-safe load testing needs at p999.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency layout for /metrics exposition:
// 100µs..10s, roughly 2.5x steps — coarse enough to keep scrapes small.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram (not attached to a
// registry) with the given ascending upper bounds; nil uses DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return newHistogram(bounds)
}

// HDRBuckets builds a log-linear bucket layout covering [min, max]: each
// power-of-two range is split into sub linear sub-buckets, HdrHistogram
// style. With sub=32 the worst-case relative quantile error is ~3%.
func HDRBuckets(min, max float64, sub int) []float64 {
	if min <= 0 || max <= min || sub < 1 {
		panic("obs: invalid HDR bucket request")
	}
	var bounds []float64
	for lo := min; lo < max; lo *= 2 {
		step := lo / float64(sub)
		for i := 1; i <= sub; i++ {
			b := lo + step*float64(i)
			if b > max {
				bounds = append(bounds, max)
				return bounds
			}
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s returns the first bound >= v's bucket; values
	// above every bound land in the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Percentile estimates the p-th percentile (0 < p <= 100) by walking the
// cumulative counts and interpolating inside the winning bucket. Returns
// 0 with no observations; the tail (+Inf) bucket reports its lower bound.
func (h *Histogram) Percentile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lo // open-ended tail: report its floor
			}
			hi := h.bounds[i]
			frac := float64(rank-cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// writeProm renders the histogram in exposition format: cumulative
// le-labeled buckets, then _sum and _count.
func (h *Histogram) writeProm(sb *strings.Builder, m *metric, key string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, m.labelString(key, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, m.labelString(key, "le", "+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", m.name, m.labelString(key), formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", m.name, m.labelString(key), h.count.Load())
}
