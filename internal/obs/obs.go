// Package obs is the repository's dependency-free observability toolkit:
// lock-cheap counters, gauges and histograms that any hot path can bump
// with a single atomic op, collected into a Registry that renders the
// Prometheus text exposition format (the shape fbforward's metrics.go
// exposes per upstream, and what any standard scraper ingests). The
// portal serves a Registry at /metrics; the load generator reuses the
// same HDR-style histogram for coordinated-omission-safe latency
// recording (see internal/loadgen).
//
// Unlike internal/stats — which retains every sample for exact
// percentiles at experiment scale — obs instruments are fixed-size and
// write-contention-free, sized for millions of observations per second
// from concurrent request handlers.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests,
// connected SSE clients).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered family: a name, help text, type, and the
// per-label-set children created through With.
type metric struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	mu     sync.Mutex
	kids   sync.Map // joined label values -> child (Counter/Gauge/Histogram)
	newKid func() any
}

// child returns the instrument for one label-value tuple, creating it on
// first use. The fast path is a single lock-free map load.
func (m *metric) child(values ...string) any {
	if len(values) != len(m.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label value(s), got %d", m.name, len(m.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	if v, ok := m.kids.Load(key); ok {
		return v
	}
	// Serialize creation so concurrent first touches agree on one child.
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.kids.Load(key); ok {
		return v
	}
	v := m.newKid()
	m.kids.Store(key, v)
	return v
}

// sortedKeys returns the child keys in stable exposition order.
func (m *metric) sortedKeys() []string {
	var keys []string
	m.kids.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// labelString renders {a="x",b="y"} for a joined key, with extra
// appended (the histogram le label); empty for an unlabeled metric.
func (m *metric) labelString(key string, extra ...string) string {
	if len(m.labels) == 0 && len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	vals := strings.Split(key, "\x1f")
	n := 0
	for i, l := range m.labels {
		if n > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteString(`"`)
		n++
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if n > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extra[i+1]))
		sb.WriteString(`"`)
		n++
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ m *metric }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.m.child(values...).(*Counter) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ m *metric }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.m.child(values...).(*Gauge) }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	m      *metric
	bounds []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.m.child(values...).(*Histogram) }

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration happens at wiring time; observation is
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metric{}} }

func (r *Registry) register(name, help, typ string, labels []string, newKid func() any) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	m := &metric{name: name, help: help, typ: typ, labels: labels, newKid: newKid}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter", nil, func() any { return new(Counter) })
	return m.child().(*Counter)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{m: r.register(name, help, "counter", labels, func() any { return new(Counter) })}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge", nil, func() any { return new(Gauge) })
	return m.child().(*Gauge)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{m: r.register(name, help, "gauge", labels, func() any { return new(Gauge) })}
}

// Histogram registers an unlabeled histogram with the given upper bounds
// (seconds, ascending; +Inf is implicit). Nil bounds use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, "histogram", nil, func() any { return newHistogram(bounds) })
	return m.child().(*Histogram)
}

// HistogramVec registers a histogram family with the given upper bounds
// and label names. Nil bounds use DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, "histogram", labels, func() any { return newHistogram(bounds) })
	return &HistogramVec{m: m, bounds: bounds}
}

// WriteTo renders every registered family in Prometheus text exposition
// format (version 0.0.4). Safe to call concurrently with observations:
// each sample is an atomic read, so a scrape sees a near-point-in-time
// view without stopping writers.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	var sb strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, key := range m.sortedKeys() {
			v, _ := m.kids.Load(key)
			switch inst := v.(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", m.name, m.labelString(key), inst.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %d\n", m.name, m.labelString(key), inst.Value())
			case *Histogram:
				inst.writeProm(&sb, m, key)
			}
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for typical values, +Inf spelled out).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
