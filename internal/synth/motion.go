package synth

import (
	"math"
	"math/rand"
	"sync"

	"picoprobe/internal/emd"
	"picoprobe/internal/geom"
	"picoprobe/internal/metadata"
	"picoprobe/internal/tensor"
)

// SpatiotemporalConfig parameterizes a synthetic in-situ acquisition: gold
// nanoparticles undergoing Brownian motion (with optional drift) on a noisy
// carbon background, imaged as a (T, H, W) series.
type SpatiotemporalConfig struct {
	Frames, Height, Width int
	Particles             int
	MinRadius, MaxRadius  float64 // blob radius in pixels
	StepSigma             float64 // Brownian step per frame, pixels
	Drift                 [2]float64
	Background            float64 // carbon film mean level
	PeakIntensity         float64 // blob peak above background
	NoiseSigma            float64
	Seed                  int64
}

func (c SpatiotemporalConfig) withDefaults() SpatiotemporalConfig {
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.Height == 0 {
		c.Height = 128
	}
	if c.Width == 0 {
		c.Width = 128
	}
	if c.Particles == 0 {
		c.Particles = 8
	}
	if c.MinRadius == 0 {
		c.MinRadius = 3
	}
	if c.MaxRadius == 0 {
		c.MaxRadius = 7
	}
	if c.StepSigma == 0 {
		c.StepSigma = 1.5
	}
	if c.Background == 0 {
		c.Background = 20
	}
	if c.PeakIntensity == 0 {
		c.PeakIntensity = 120
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 6
	}
	return c
}

// PaperSpatiotemporal returns the configuration matching the paper's
// spatiotemporal use case: 600 frames of 512 x 512 float64 (~1200 MB), 600
// time steps showing gold nanoparticles on a carbon background.
func PaperSpatiotemporal() SpatiotemporalConfig {
	return SpatiotemporalConfig{Frames: 600, Height: 512, Width: 512, Particles: 14, Seed: 2}.withDefaults()
}

// SpatiotemporalSample is a generated series with per-frame ground truth.
type SpatiotemporalSample struct {
	Config SpatiotemporalConfig
	Series *tensor.Dense // (T, H, W)
	Truth  [][]geom.Box  // Truth[t] = boxes of every particle in frame t
}

// GenerateSpatiotemporal builds a deterministic synthetic series. Particle
// trajectories are generated first (sequentially, from the seed), then
// frames are rendered in parallel with per-frame RNG streams.
func GenerateSpatiotemporal(cfg SpatiotemporalConfig) *SpatiotemporalSample {
	cfg = cfg.withDefaults()
	T, H, W := cfg.Frames, cfg.Height, cfg.Width

	type particle struct{ r float64 }
	rng := rand.New(rand.NewSource(cfg.Seed))
	parts := make([]particle, cfg.Particles)
	xs := make([][]float64, cfg.Particles) // xs[p][t]
	ys := make([][]float64, cfg.Particles)
	for p := range parts {
		parts[p].r = cfg.MinRadius + rng.Float64()*(cfg.MaxRadius-cfg.MinRadius)
		xs[p] = make([]float64, T)
		ys[p] = make([]float64, T)
		x := cfg.MaxRadius + rng.Float64()*(float64(W)-2*cfg.MaxRadius)
		y := cfg.MaxRadius + rng.Float64()*(float64(H)-2*cfg.MaxRadius)
		for t := 0; t < T; t++ {
			xs[p][t], ys[p][t] = x, y
			x += cfg.Drift[0] + rng.NormFloat64()*cfg.StepSigma
			y += cfg.Drift[1] + rng.NormFloat64()*cfg.StepSigma
			// Reflect at the borders so particles stay in frame.
			x = reflect(x, cfg.MaxRadius, float64(W)-cfg.MaxRadius)
			y = reflect(y, cfg.MaxRadius, float64(H)-cfg.MaxRadius)
		}
	}

	series := tensor.New(T, H, W)
	truth := make([][]geom.Box, T)
	var wg sync.WaitGroup
	for t := 0; t < T; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			frameRng := rand.New(rand.NewSource(cfg.Seed*2_000_003 + int64(t)))
			frame := series.Frame(t).Data()
			for i := range frame {
				frame[i] = cfg.Background + frameRng.NormFloat64()*cfg.NoiseSigma
			}
			boxes := make([]geom.Box, 0, len(parts))
			for p, part := range parts {
				cx, cy := xs[p][t], ys[p][t]
				sigma := part.r / 2
				// Render within +/- 3 sigma.
				ext := 3 * sigma
				x0, x1 := int(math.Max(0, cx-ext)), int(math.Min(float64(W-1), cx+ext))
				y0, y1 := int(math.Max(0, cy-ext)), int(math.Min(float64(H-1), cy+ext))
				for yy := y0; yy <= y1; yy++ {
					for xx := x0; xx <= x1; xx++ {
						dx, dy := float64(xx)-cx, float64(yy)-cy
						frame[yy*W+xx] += cfg.PeakIntensity * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
					}
				}
				// Ground-truth box spans +/- 2 sigma (where the blob is
				// clearly above the noise floor).
				boxes = append(boxes, geom.FromCenter(cx, cy, 4*sigma, 4*sigma).Clamp(float64(W), float64(H)))
			}
			truth[t] = boxes
		}(t)
	}
	wg.Wait()

	return &SpatiotemporalSample{Config: cfg, Series: series, Truth: truth}
}

// reflect folds v back into [lo, hi].
func reflect(v, lo, hi float64) float64 {
	for v < lo || v > hi {
		if v < lo {
			v = 2*lo - v
		}
		if v > hi {
			v = 2*hi - v
		}
	}
	return v
}

// WriteEMD stores the series as an EMD container at path. The data is
// written as float64 — the paper calls out the fp64 storage explicitly as
// the source of the slow fp64→uint8 cast during video conversion — in
// per-frame chunks so the analysis stage can stream it.
func (s *SpatiotemporalSample) WriteEMD(path string, mic *metadata.Microscope, acq *metadata.Acquisition) error {
	w, err := emd.Create(path)
	if err != nil {
		return err
	}
	grp := w.Root().CreateGroup("data").CreateGroup("spatiotemporal")
	grp.SetAttr("emd_group_type", int64(1))
	grp.SetAttr("units", []string{"frame", "px", "px"})

	ds, err := w.CreateDataset(grp, "data", tensor.Float64, s.Series.Shape(), emd.DatasetOptions{})
	if err != nil {
		w.Close()
		return err
	}
	ds.SetAttr("signal", "HAADF")
	batch := 16
	T := s.Config.Frames
	for lo := 0; lo < T; lo += batch {
		hi := lo + batch
		if hi > T {
			hi = T
		}
		stride := s.Config.Height * s.Config.Width
		frames := tensor.FromData(s.Series.Data()[lo*stride:hi*stride], hi-lo, s.Config.Height, s.Config.Width)
		if err := ds.WriteFrames(frames); err != nil {
			w.Close()
			return err
		}
	}

	mic.WriteTo(w.Root().CreateGroup("metadata").CreateGroup("microscope"))
	acqCopy := *acq
	acqCopy.Kind = metadata.KindSpatiotemporal
	if acqCopy.Signal == "" {
		acqCopy.Signal = "HAADF"
	}
	acqCopy.Elements = []string{"Au", "C"}
	acqCopy.WriteTo(w.Root().CreateGroup("metadata").CreateGroup("acquisition"))
	return w.Close()
}

// DefaultMicroscope returns PicoProbe-like instrument settings used by the
// generators and examples.
func DefaultMicroscope() *metadata.Microscope {
	return &metadata.Microscope{
		InstrumentName:      "Dynamic PicoProbe (synthetic)",
		BeamEnergyKeV:       300,
		MagnificationX:      1_800_000,
		EnergyResolutionMeV: 28,
		ProbeSizePM:         50,
		Detector:            "XPAD hyperspectral X-ray detector array",
		CollectionSR:        4.5,
		StageXYZUm:          [3]float64{12.5, -3.25, 0.8},
		AberrationCorrected: true,
		Environment:         "high-vacuum",
		SoftwareVersion:     "picoprobe-synth 1.0.0",
		DwellTimeUS:         12,
	}
}
