package synth

import (
	"path/filepath"
	"testing"
	"time"

	"picoprobe/internal/emd"
	"picoprobe/internal/metadata"
)

func testAcquisition(kind string) *metadata.Acquisition {
	return &metadata.Acquisition{
		SampleName: "polyamide-film-007",
		Operator:   "N. Zaluzec",
		Collected:  time.Date(2023, 6, 5, 14, 30, 0, 0, time.UTC),
		Kind:       kind,
	}
}

func TestLibraryConsistency(t *testing.T) {
	for sym, el := range Library {
		if el.Symbol != sym {
			t.Errorf("element %q symbol mismatch: %q", sym, el.Symbol)
		}
		if len(el.Lines) == 0 {
			t.Errorf("element %q has no lines", sym)
		}
		for _, l := range el.Lines {
			if l.KeV <= 0 || l.Weight <= 0 {
				t.Errorf("element %q has invalid line %+v", sym, l)
			}
		}
	}
	if len(Symbols()) != len(Library) {
		t.Error("Symbols() incomplete")
	}
	lines := LineEnergies()
	for i := 1; i < len(lines); i++ {
		if lines[i].KeV < lines[i-1].KeV {
			t.Error("LineEnergies not sorted")
		}
	}
}

func TestGenerateHyperspectralDeterministic(t *testing.T) {
	cfg := HyperspectralConfig{Height: 16, Width: 16, Channels: 64, Seed: 7}
	a, err := GenerateHyperspectral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHyperspectral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cube.Data() {
		if a.Cube.Data()[i] != b.Cube.Data()[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	if a.Cube.Shape().Elems() != 16*16*64 {
		t.Errorf("shape = %v", a.Cube.Shape())
	}
}

func TestHyperspectralHasElementPeaks(t *testing.T) {
	cfg := HyperspectralConfig{Height: 24, Width: 24, Channels: 256, Seed: 3}
	s, err := GenerateHyperspectral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate spectrum should peak near the carbon K-alpha line
	// (0.28 keV) relative to a line-free window (e.g. ~4-5 keV).
	spectrum := s.Cube.SumAxis(0).SumAxis(0)
	chanOf := func(keV float64) int {
		return int(keV / s.Config.MaxEnergyKeV * float64(s.Config.Channels))
	}
	carbon := spectrum.At(chanOf(0.28))
	quiet := spectrum.At(chanOf(4.6))
	if carbon < 3*quiet {
		t.Errorf("carbon peak %v not prominent over continuum %v", carbon, quiet)
	}
	// Lead particles should produce a visible 10.55 keV L-alpha peak.
	lead := spectrum.At(chanOf(10.55))
	if lead < 1.2*quiet {
		t.Errorf("lead L-alpha %v not above continuum %v", lead, quiet)
	}
}

func TestHyperspectralValuesNonNegative(t *testing.T) {
	s, err := GenerateHyperspectral(HyperspectralConfig{Height: 8, Width: 8, Channels: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	min, _ := s.Cube.MinMax()
	if min < 0 {
		t.Errorf("negative counts: %v", min)
	}
}

func TestHyperspectralUnknownElementRejected(t *testing.T) {
	_, err := GenerateHyperspectral(HyperspectralConfig{Film: map[string]float64{"Xx": 1}})
	if err == nil {
		t.Error("unknown film element should be rejected")
	}
	_, err = GenerateHyperspectral(HyperspectralConfig{
		Particles: []ParticleSpec{{Element: "Zz", Count: 1, MinRadius: 1, MaxRadius: 2, Concentration: 1}},
	})
	if err == nil {
		t.Error("unknown particle element should be rejected")
	}
}

func TestHyperspectralWriteAndExtract(t *testing.T) {
	s, err := GenerateHyperspectral(HyperspectralConfig{Height: 16, Width: 16, Channels: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hs.emdg")
	if err := s.WriteEMD(path, DefaultMicroscope(), testAcquisition(metadata.KindHyperspectral)); err != nil {
		t.Fatal(err)
	}
	f, err := emd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	exp, err := metadata.Extract(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	if exp.Microscope.BeamEnergyKeV != 300 {
		t.Errorf("beam energy = %v", exp.Microscope.BeamEnergyKeV)
	}
	if exp.Acquisition.Kind != metadata.KindHyperspectral {
		t.Errorf("kind = %q", exp.Acquisition.Kind)
	}
	if len(exp.Acquisition.Shape) != 3 {
		t.Errorf("shape = %v", exp.Acquisition.Shape)
	}
	if exp.Acquisition.DTypeName != "float32" {
		t.Errorf("dtype = %q", exp.Acquisition.DTypeName)
	}
	// Round-trip of the data itself.
	ds, err := f.Dataset("data/hyperspectral/data")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if cube.Shape().Elems() != s.Cube.Shape().Elems() {
		t.Error("cube size mismatch")
	}
}

func TestGenerateSpatiotemporalTruth(t *testing.T) {
	cfg := SpatiotemporalConfig{Frames: 12, Height: 64, Width: 64, Particles: 5, Seed: 11}
	s := GenerateSpatiotemporal(cfg)
	if len(s.Truth) != 12 {
		t.Fatalf("truth frames = %d", len(s.Truth))
	}
	for ti, boxes := range s.Truth {
		if len(boxes) != 5 {
			t.Fatalf("frame %d has %d boxes", ti, len(boxes))
		}
		for _, b := range boxes {
			if b.X0 < 0 || b.Y0 < 0 || b.X1 > 64 || b.Y1 > 64 {
				t.Errorf("frame %d box out of bounds: %+v", ti, b)
			}
			if b.Area() <= 0 {
				t.Errorf("degenerate truth box: %+v", b)
			}
		}
	}
	// Particles should actually brighten their box centers.
	fr := s.Series.Frame(0)
	for _, b := range s.Truth[0] {
		cx, cy := b.Center()
		v := fr.At(int(cy), int(cx))
		if v < s.Config.Background+s.Config.PeakIntensity/2 {
			t.Errorf("particle at (%v,%v) not bright: %v", cx, cy, v)
		}
	}
}

func TestSpatiotemporalDeterministic(t *testing.T) {
	cfg := SpatiotemporalConfig{Frames: 6, Height: 32, Width: 32, Particles: 3, Seed: 4}
	a := GenerateSpatiotemporal(cfg)
	b := GenerateSpatiotemporal(cfg)
	for i := range a.Series.Data() {
		if a.Series.Data()[i] != b.Series.Data()[i] {
			t.Fatal("series not deterministic")
		}
	}
}

func TestSpatiotemporalMotion(t *testing.T) {
	cfg := SpatiotemporalConfig{Frames: 30, Height: 64, Width: 64, Particles: 4, Seed: 9, StepSigma: 2}
	s := GenerateSpatiotemporal(cfg)
	// Particles should move: total displacement over the series must be
	// nonzero for most particles.
	moved := 0
	for p := 0; p < 4; p++ {
		x0, y0 := s.Truth[0][p].Center()
		x1, y1 := s.Truth[29][p].Center()
		if (x1-x0)*(x1-x0)+(y1-y0)*(y1-y0) > 1 {
			moved++
		}
	}
	if moved < 3 {
		t.Errorf("only %d of 4 particles moved", moved)
	}
}

func TestSpatiotemporalWriteAndStream(t *testing.T) {
	cfg := SpatiotemporalConfig{Frames: 10, Height: 32, Width: 32, Particles: 3, Seed: 6}
	s := GenerateSpatiotemporal(cfg)
	path := filepath.Join(t.TempDir(), "st.emdg")
	if err := s.WriteEMD(path, DefaultMicroscope(), testAcquisition(metadata.KindSpatiotemporal)); err != nil {
		t.Fatal(err)
	}
	f, err := emd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data/spatiotemporal/data")
	if err != nil {
		t.Fatal(err)
	}
	// Stream frames 4..7 and compare to the in-memory series (float64
	// round-trips exactly).
	got, err := ds.ReadFrames(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 3; ti++ {
		want := s.Series.Frame(4 + ti)
		for i, v := range got.Frame(ti).Data() {
			if v != want.Data()[i] {
				t.Fatalf("frame %d mismatch at %d", 4+ti, i)
			}
		}
	}
	exp, err := metadata.Extract(f)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Acquisition.Kind != metadata.KindSpatiotemporal {
		t.Errorf("kind = %q", exp.Acquisition.Kind)
	}
}

func TestPaperConfigsMatchPaperSizes(t *testing.T) {
	hs := PaperHyperspectral()
	hsBytes := int64(hs.Height) * int64(hs.Width) * int64(hs.Channels) * 4 // float32
	if hsBytes < 85_000_000 || hsBytes > 100_000_000 {
		t.Errorf("paper hyperspectral size = %d bytes, want ~91 MB", hsBytes)
	}
	st := PaperSpatiotemporal()
	stBytes := int64(st.Frames) * int64(st.Height) * int64(st.Width) * 8 // float64
	if stBytes < 1_150_000_000 || stBytes > 1_350_000_000 {
		t.Errorf("paper spatiotemporal size = %d bytes, want ~1200 MB", stBytes)
	}
	if st.Frames != 600 {
		t.Errorf("paper series frames = %d, want 600", st.Frames)
	}
}

func TestReflectStaysInRange(t *testing.T) {
	for _, v := range []float64{-10, 0, 5, 99, 150, 230} {
		got := reflect(v, 10, 90)
		if got < 10 || got > 90 {
			t.Errorf("reflect(%v) = %v out of [10,90]", v, got)
		}
	}
}
