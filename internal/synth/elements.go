// Package synth is the synthetic instrument: it generates the hyperspectral
// cubes and spatiotemporal nanoparticle series that the real Dynamic
// PicoProbe would produce, with known ground truth, and writes them as EMD
// containers carrying realistic microscope metadata. It substitutes for the
// proprietary instrument and its detectors while exercising exactly the
// data shapes, sizes and content statistics the paper's flows consume.
package synth

import "sort"

// Line is one characteristic X-ray emission line.
type Line struct {
	KeV    float64 // line energy
	Weight float64 // relative intensity within the element
}

// Element is a chemical element with its EDS-visible emission lines.
type Element struct {
	Symbol string
	Name   string
	Lines  []Line
}

// Library holds the elements the synthetic samples draw from. Line energies
// are the textbook K/L/M values rounded to two decimals; relative weights
// are approximate branching ratios — good enough for peak-position-based
// composition analysis downstream.
var Library = map[string]Element{
	"C":  {Symbol: "C", Name: "carbon", Lines: []Line{{0.28, 1.0}}},
	"N":  {Symbol: "N", Name: "nitrogen", Lines: []Line{{0.39, 1.0}}},
	"O":  {Symbol: "O", Name: "oxygen", Lines: []Line{{0.52, 1.0}}},
	"Si": {Symbol: "Si", Name: "silicon", Lines: []Line{{1.74, 1.0}}},
	"S":  {Symbol: "S", Name: "sulfur", Lines: []Line{{2.31, 1.0}}},
	"Fe": {Symbol: "Fe", Name: "iron", Lines: []Line{{6.40, 1.0}, {7.06, 0.17}}},
	"Cu": {Symbol: "Cu", Name: "copper", Lines: []Line{{8.05, 1.0}, {8.90, 0.17}}},
	"Au": {Symbol: "Au", Name: "gold", Lines: []Line{{2.12, 1.0}, {9.71, 0.8}, {11.44, 0.3}}},
	"Pb": {Symbol: "Pb", Name: "lead", Lines: []Line{{2.35, 1.0}, {10.55, 0.8}, {12.61, 0.3}}},
}

// Symbols returns the library's element symbols in sorted order.
func Symbols() []string {
	out := make([]string, 0, len(Library))
	for s := range Library {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LineEnergies returns every line energy in the library with its element,
// sorted by energy; the analysis stage uses this table to assign detected
// spectral peaks to elements.
func LineEnergies() []struct {
	KeV     float64
	Element string
} {
	var out []struct {
		KeV     float64
		Element string
	}
	for _, sym := range Symbols() {
		for _, l := range Library[sym].Lines {
			out = append(out, struct {
				KeV     float64
				Element string
			}{l.KeV, sym})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].KeV < out[j].KeV })
	return out
}
