package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"picoprobe/internal/emd"
	"picoprobe/internal/metadata"
	"picoprobe/internal/tensor"
)

// ParticleSpec describes a population of embedded particles of one element.
type ParticleSpec struct {
	Element       string
	Count         int
	MinRadius     float64 // pixels
	MaxRadius     float64 // pixels
	Concentration float64 // spectral weight relative to the film
}

// HyperspectralConfig parameterizes a synthetic hyperspectral acquisition:
// a film of light elements with embedded heavy-metal particles, imaged as
// an (H, W, C) cube of EDS counts.
type HyperspectralConfig struct {
	Height, Width, Channels int
	MaxEnergyKeV            float64            // spectral axis upper bound
	DetectorSigmaKeV        float64            // line broadening
	Film                    map[string]float64 // element -> fraction
	Particles               []ParticleSpec
	CountsScale             float64 // overall intensity
	Seed                    int64
}

// withDefaults fills zero fields with sensible values.
func (c HyperspectralConfig) withDefaults() HyperspectralConfig {
	if c.Height == 0 {
		c.Height = 64
	}
	if c.Width == 0 {
		c.Width = 64
	}
	if c.Channels == 0 {
		c.Channels = 256
	}
	if c.MaxEnergyKeV == 0 {
		c.MaxEnergyKeV = 20
	}
	if c.DetectorSigmaKeV == 0 {
		c.DetectorSigmaKeV = 0.07
	}
	if c.Film == nil {
		// Polyamide-like organic film (paper Fig 2 shows a polyamide film
		// treated to capture heavy metals from water).
		c.Film = map[string]float64{"C": 0.6, "N": 0.2, "O": 0.2}
	}
	if c.Particles == nil {
		c.Particles = []ParticleSpec{
			{Element: "Pb", Count: 6, MinRadius: 2, MaxRadius: 6, Concentration: 3},
			{Element: "Au", Count: 3, MinRadius: 2, MaxRadius: 5, Concentration: 3},
		}
	}
	if c.CountsScale == 0 {
		c.CountsScale = 100
	}
	return c
}

// PaperHyperspectral returns the configuration matching the paper's
// hyperspectral use case: a float32 cube of ~91 MB (256 x 256 x 350 x 4 B).
func PaperHyperspectral() HyperspectralConfig {
	return HyperspectralConfig{Height: 256, Width: 256, Channels: 350, Seed: 1}.withDefaults()
}

// PlacedParticle is the ground-truth location of one embedded particle.
type PlacedParticle struct {
	X, Y, R float64
	Element string
}

// HyperspectralSample is a generated cube with its ground truth.
type HyperspectralSample struct {
	Config    HyperspectralConfig
	Cube      *tensor.Dense // (H, W, C)
	Elements  []string      // all elements present, sorted
	Particles []PlacedParticle
}

// ChannelEnergy returns the center energy of spectral channel c.
func (s *HyperspectralSample) ChannelEnergy(c int) float64 {
	return (float64(c) + 0.5) * s.Config.MaxEnergyKeV / float64(s.Config.Channels)
}

// GenerateHyperspectral builds a deterministic synthetic cube. Per-element
// spectral templates are precomputed once; per-pixel spectra are a weighted
// sum of templates plus a bremsstrahlung continuum and approximately
// Poisson noise. Rows are generated in parallel with per-row RNG streams so
// the output is independent of scheduling.
func GenerateHyperspectral(cfg HyperspectralConfig) (*HyperspectralSample, error) {
	cfg = cfg.withDefaults()
	for sym := range cfg.Film {
		if _, ok := Library[sym]; !ok {
			return nil, fmt.Errorf("synth: unknown film element %q", sym)
		}
	}
	for _, p := range cfg.Particles {
		if _, ok := Library[p.Element]; !ok {
			return nil, fmt.Errorf("synth: unknown particle element %q", p.Element)
		}
	}

	H, W, C := cfg.Height, cfg.Width, cfg.Channels
	// Element spectral templates.
	elements := map[string][]float64{}
	addTemplate := func(sym string) {
		if _, done := elements[sym]; done {
			return
		}
		tpl := make([]float64, C)
		for _, line := range Library[sym].Lines {
			for c := 0; c < C; c++ {
				e := (float64(c) + 0.5) * cfg.MaxEnergyKeV / float64(C)
				d := (e - line.KeV) / cfg.DetectorSigmaKeV
				tpl[c] += line.Weight * math.Exp(-0.5*d*d)
			}
		}
		elements[sym] = tpl
	}
	for sym := range cfg.Film {
		addTemplate(sym)
	}
	for _, p := range cfg.Particles {
		addTemplate(p.Element)
	}

	// Continuum (bremsstrahlung-like) shared by all pixels.
	continuum := make([]float64, C)
	for c := 0; c < C; c++ {
		e := (float64(c) + 0.5) * cfg.MaxEnergyKeV / float64(C)
		continuum[c] = 0.08 * (1 - e/cfg.MaxEnergyKeV) * math.Exp(-e/6)
	}

	// Place particles deterministically.
	placer := rand.New(rand.NewSource(cfg.Seed))
	var placed []PlacedParticle
	for _, spec := range cfg.Particles {
		for i := 0; i < spec.Count; i++ {
			r := spec.MinRadius + placer.Float64()*(spec.MaxRadius-spec.MinRadius)
			placed = append(placed, PlacedParticle{
				X:       r + placer.Float64()*(float64(W)-2*r),
				Y:       r + placer.Float64()*(float64(H)-2*r),
				R:       r,
				Element: spec.Element,
			})
		}
	}
	concOf := map[string]float64{}
	for _, spec := range cfg.Particles {
		concOf[spec.Element] = spec.Concentration
	}

	// Film composition in deterministic order.
	filmSyms := make([]string, 0, len(cfg.Film))
	for s := range cfg.Film {
		filmSyms = append(filmSyms, s)
	}
	sort.Strings(filmSyms)

	cube := tensor.New(H, W, C)
	data := cube.Data()
	var wg sync.WaitGroup
	for y := 0; y < H; y++ {
		wg.Add(1)
		go func(y int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(y)))
			mix := make([]float64, C)
			for x := 0; x < W; x++ {
				for c := range mix {
					mix[c] = continuum[c]
				}
				for _, sym := range filmSyms {
					frac := cfg.Film[sym]
					tpl := elements[sym]
					for c := range mix {
						mix[c] += frac * tpl[c]
					}
				}
				for _, p := range placed {
					dx, dy := float64(x)-p.X, float64(y)-p.Y
					if dx*dx+dy*dy <= p.R*p.R {
						tpl := elements[p.Element]
						conc := concOf[p.Element]
						for c := range mix {
							mix[c] += conc * tpl[c]
						}
					}
				}
				base := (y*W + x) * C
				for c := 0; c < C; c++ {
					mean := mix[c] * cfg.CountsScale
					v := mean + math.Sqrt(math.Max(mean, 0.05))*rng.NormFloat64()
					if v < 0 {
						v = 0
					}
					data[base+c] = math.Round(v) // detector counts are integral
				}
			}
		}(y)
	}
	wg.Wait()

	present := map[string]bool{}
	for s := range cfg.Film {
		present[s] = true
	}
	for _, p := range cfg.Particles {
		present[p.Element] = true
	}
	var syms []string
	for s := range present {
		syms = append(syms, s)
	}
	sort.Strings(syms)

	return &HyperspectralSample{Config: cfg, Cube: cube, Elements: syms, Particles: placed}, nil
}

// WriteEMD stores the sample as an EMD container at path, with instrument
// and acquisition metadata. The cube is written as float32 (matching the
// paper's 91 MB file size at the paper-scale configuration), in
// row-batched chunks.
func (s *HyperspectralSample) WriteEMD(path string, mic *metadata.Microscope, acq *metadata.Acquisition) error {
	w, err := emd.Create(path)
	if err != nil {
		return err
	}
	grp := w.Root().CreateGroup("data").CreateGroup("hyperspectral")
	grp.SetAttr("emd_group_type", int64(1))
	grp.SetAttr("units", []string{"px", "px", "keV"})
	grp.SetAttr("max_energy_kev", s.Config.MaxEnergyKeV)

	ds, err := w.CreateDataset(grp, "data", tensor.Float32, s.Cube.Shape(), emd.DatasetOptions{})
	if err != nil {
		w.Close()
		return err
	}
	ds.SetAttr("signal", "EDS")
	// Write in batches of rows to exercise chunked storage.
	H := s.Config.Height
	batch := 32
	for lo := 0; lo < H; lo += batch {
		hi := lo + batch
		if hi > H {
			hi = H
		}
		rows := tensor.FromData(
			s.Cube.Data()[lo*s.Config.Width*s.Config.Channels:hi*s.Config.Width*s.Config.Channels],
			hi-lo, s.Config.Width, s.Config.Channels)
		if err := ds.WriteFrames(rows); err != nil {
			w.Close()
			return err
		}
	}

	mic.WriteTo(w.Root().CreateGroup("metadata").CreateGroup("microscope"))
	acqCopy := *acq
	acqCopy.Kind = metadata.KindHyperspectral
	if acqCopy.Signal == "" {
		acqCopy.Signal = "EDS"
	}
	acqCopy.Elements = s.Elements
	acqCopy.WriteTo(w.Root().CreateGroup("metadata").CreateGroup("acquisition"))
	return w.Close()
}
