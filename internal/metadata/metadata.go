// Package metadata defines the experiment-metadata schema and its
// extraction from EMD containers. It plays the role HyperSpy plays in the
// paper's analysis functions — walking the file's attribute tree to recover
// microscope settings, acquisition details and sample information — and the
// role of the paper's extensible DataCite-based schema for records
// published to the search index.
package metadata

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"picoprobe/internal/emd"
)

// Attribute-tree locations, following the EMD convention of a /metadata
// group alongside /data.
const (
	MicroscopeGroup  = "metadata/microscope"
	AcquisitionGroup = "metadata/acquisition"
	DataGroup        = "data"
)

// Acquisition kinds for the two use cases.
const (
	KindHyperspectral  = "hyperspectral"
	KindSpatiotemporal = "spatiotemporal"
)

// Microscope captures instrument settings at collection time. Field choices
// mirror the Dynamic PicoProbe's headline capabilities (30-300 kV
// monochromated aberration-corrected probe, <30 meV spectroscopy, XPAD
// hyperspectral X-ray detector with ~4.5 sR collection).
type Microscope struct {
	InstrumentName      string     `json:"instrument_name"`
	BeamEnergyKeV       float64    `json:"beam_energy_kev"`
	MagnificationX      int64      `json:"magnification_x"`
	EnergyResolutionMeV float64    `json:"energy_resolution_mev"`
	ProbeSizePM         float64    `json:"probe_size_pm"`
	Detector            string     `json:"detector"`
	CollectionSR        float64    `json:"collection_sr"`
	StageXYZUm          [3]float64 `json:"stage_xyz_um"`
	AberrationCorrected bool       `json:"aberration_corrected"`
	Environment         string     `json:"environment"`
	SoftwareVersion     string     `json:"software_version"`
	DwellTimeUS         float64    `json:"dwell_time_us"`
}

// WriteTo stores the microscope settings as attributes of g.
func (m *Microscope) WriteTo(g *emd.Group) {
	g.SetAttr("instrument_name", m.InstrumentName)
	g.SetAttr("beam_energy_kev", m.BeamEnergyKeV)
	g.SetAttr("magnification_x", m.MagnificationX)
	g.SetAttr("energy_resolution_mev", m.EnergyResolutionMeV)
	g.SetAttr("probe_size_pm", m.ProbeSizePM)
	g.SetAttr("detector", m.Detector)
	g.SetAttr("collection_sr", m.CollectionSR)
	g.SetAttr("stage_xyz_um", m.StageXYZUm[:])
	g.SetAttr("aberration_corrected", m.AberrationCorrected)
	g.SetAttr("environment", m.Environment)
	g.SetAttr("software_version", m.SoftwareVersion)
	g.SetAttr("dwell_time_us", m.DwellTimeUS)
}

// MicroscopeFrom reads microscope settings back from attributes of g.
func MicroscopeFrom(g *emd.Group) (*Microscope, error) {
	m := &Microscope{}
	var ok bool
	if m.InstrumentName, ok = g.AttrString("instrument_name"); !ok {
		return nil, fmt.Errorf("metadata: missing instrument_name")
	}
	m.BeamEnergyKeV, _ = g.AttrFloat("beam_energy_kev")
	m.MagnificationX, _ = g.AttrInt("magnification_x")
	m.EnergyResolutionMeV, _ = g.AttrFloat("energy_resolution_mev")
	m.ProbeSizePM, _ = g.AttrFloat("probe_size_pm")
	m.Detector, _ = g.AttrString("detector")
	m.CollectionSR, _ = g.AttrFloat("collection_sr")
	if v, ok := g.Attr("stage_xyz_um"); ok {
		if arr, ok := v.([]float64); ok && len(arr) == 3 {
			copy(m.StageXYZUm[:], arr)
		}
	}
	if v, ok := g.Attr("aberration_corrected"); ok {
		m.AberrationCorrected, _ = v.(bool)
	}
	m.Environment, _ = g.AttrString("environment")
	m.SoftwareVersion, _ = g.AttrString("software_version")
	m.DwellTimeUS, _ = g.AttrFloat("dwell_time_us")
	return m, nil
}

// Acquisition describes one measurement run.
type Acquisition struct {
	SampleName string    `json:"sample_name"`
	Operator   string    `json:"operator"`
	Collected  time.Time `json:"collected"`
	Signal     string    `json:"signal"`
	Kind       string    `json:"kind"`
	Shape      []int     `json:"shape"`
	DTypeName  string    `json:"dtype"`
	Elements   []string  `json:"elements,omitempty"`
}

// WriteTo stores the acquisition details as attributes of g.
func (a *Acquisition) WriteTo(g *emd.Group) {
	g.SetAttr("sample_name", a.SampleName)
	g.SetAttr("operator", a.Operator)
	g.SetAttr("collected", a.Collected.UTC().Format(time.RFC3339Nano))
	g.SetAttr("signal", a.Signal)
	g.SetAttr("kind", a.Kind)
	if len(a.Elements) > 0 {
		g.SetAttr("elements", a.Elements)
	}
}

// AcquisitionFrom reads acquisition details from attributes of g. Shape and
// dtype are filled in by Extract from the primary dataset.
func AcquisitionFrom(g *emd.Group) (*Acquisition, error) {
	a := &Acquisition{}
	var ok bool
	if a.SampleName, ok = g.AttrString("sample_name"); !ok {
		return nil, fmt.Errorf("metadata: missing sample_name")
	}
	a.Operator, _ = g.AttrString("operator")
	if ts, ok := g.AttrString("collected"); ok {
		t, err := time.Parse(time.RFC3339Nano, ts)
		if err != nil {
			return nil, fmt.Errorf("metadata: bad collected timestamp %q: %w", ts, err)
		}
		a.Collected = t
	}
	a.Signal, _ = g.AttrString("signal")
	a.Kind, _ = g.AttrString("kind")
	if v, ok := g.Attr("elements"); ok {
		if arr, ok := v.([]string); ok {
			a.Elements = arr
		}
	}
	return a, nil
}

// FileRef points at a raw data file with integrity information.
type FileRef struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256,omitempty"`
}

// Product is a derived artifact (plot, annotated video, CSV) produced by
// the analysis stage and rendered by the portal.
type Product struct {
	Name string `json:"name"`
	Path string `json:"path"`
	Kind string `json:"kind"`
}

// Experiment is the DataCite-flavoured record published to the search
// index. One record is produced per flow run.
type Experiment struct {
	ID              string       `json:"id"`
	Title           string       `json:"title"`
	Creators        []string     `json:"creators"`
	PublicationYear int          `json:"publication_year"`
	ResourceType    string       `json:"resource_type"`
	Subjects        []string     `json:"subjects,omitempty"`
	Description     string       `json:"description,omitempty"`
	Microscope      *Microscope  `json:"microscope"`
	Acquisition     *Acquisition `json:"acquisition"`
	Files           []FileRef    `json:"files,omitempty"`
	Products        []Product    `json:"products,omitempty"`
	VisibleTo       []string     `json:"visible_to,omitempty"`
}

// Validate checks the fields every published record must carry.
func (e *Experiment) Validate() error {
	switch {
	case e.ID == "":
		return fmt.Errorf("metadata: experiment missing id")
	case e.Title == "":
		return fmt.Errorf("metadata: experiment missing title")
	case e.Microscope == nil:
		return fmt.Errorf("metadata: experiment missing microscope block")
	case e.Acquisition == nil:
		return fmt.Errorf("metadata: experiment missing acquisition block")
	case e.Acquisition.Collected.IsZero():
		return fmt.Errorf("metadata: experiment missing collection time")
	}
	return nil
}

// JSON renders the record as indented JSON.
func (e *Experiment) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// Extract walks an EMD container and assembles the experiment record,
// fusing what the paper obtains with HyperSpy: microscope settings,
// acquisition details, and the primary dataset's shape and dtype. The
// record ID is derived deterministically from the sample name and
// collection time so repeated extraction is idempotent.
func Extract(f *emd.File) (*Experiment, error) {
	micGrp, ok := f.Root().Lookup(MicroscopeGroup)
	if !ok {
		return nil, fmt.Errorf("metadata: container has no %s group", MicroscopeGroup)
	}
	mic, err := MicroscopeFrom(micGrp)
	if err != nil {
		return nil, err
	}
	acqGrp, ok := f.Root().Lookup(AcquisitionGroup)
	if !ok {
		return nil, fmt.Errorf("metadata: container has no %s group", AcquisitionGroup)
	}
	acq, err := AcquisitionFrom(acqGrp)
	if err != nil {
		return nil, err
	}

	// Locate the primary dataset: the first dataset under /data in walk
	// order.
	dataGrp, ok := f.Root().Lookup(DataGroup)
	if !ok {
		return nil, fmt.Errorf("metadata: container has no %s group", DataGroup)
	}
	found := false
	dataGrp.Walk(func(path string, g *emd.Group) {
		if found {
			return
		}
		for _, ds := range g.Datasets() {
			acq.Shape = append([]int(nil), ds.Shape()...)
			acq.DTypeName = ds.DType().String()
			found = true
			return
		}
	})
	if !found {
		return nil, fmt.Errorf("metadata: no dataset found under /%s", DataGroup)
	}

	exp := &Experiment{
		ID:              RecordID(acq.SampleName, acq.Collected),
		Title:           fmt.Sprintf("%s %s acquisition", acq.SampleName, acq.Kind),
		Creators:        []string{acq.Operator},
		PublicationYear: acq.Collected.Year(),
		ResourceType:    "Dataset",
		Subjects:        append([]string{acq.Kind, acq.Signal}, acq.Elements...),
		Microscope:      mic,
		Acquisition:     acq,
	}
	return exp, nil
}

// RecordID derives a stable record identifier from the sample name and
// collection instant.
func RecordID(sample string, collected time.Time) string {
	h := sha256.Sum256([]byte(sample + "|" + collected.UTC().Format(time.RFC3339Nano)))
	return "exp-" + hex.EncodeToString(h[:8])
}
