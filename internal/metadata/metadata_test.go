package metadata

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"picoprobe/internal/emd"
	"picoprobe/internal/tensor"
)

func sampleMicroscope() *Microscope {
	return &Microscope{
		InstrumentName:      "Dynamic PicoProbe",
		BeamEnergyKeV:       300,
		MagnificationX:      2_000_000,
		EnergyResolutionMeV: 28,
		ProbeSizePM:         50,
		Detector:            "XPAD",
		CollectionSR:        4.5,
		StageXYZUm:          [3]float64{1, 2, 3},
		AberrationCorrected: true,
		Environment:         "cryogenic",
		SoftwareVersion:     "v1.2.3",
		DwellTimeUS:         10,
	}
}

func writeContainer(t *testing.T, path string) {
	t.Helper()
	w, err := emd.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Root().CreateGroup("data").CreateGroup("hyperspectral")
	ds, err := w.CreateDataset(g, "data", tensor.Uint16, tensor.Shape{4, 4, 8}, emd.DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAll(tensor.New(4, 4, 8)); err != nil {
		t.Fatal(err)
	}
	sampleMicroscope().WriteTo(w.Root().CreateGroup("metadata").CreateGroup("microscope"))
	acq := &Acquisition{
		SampleName: "film-42",
		Operator:   "A. Brace",
		Collected:  time.Date(2023, 8, 25, 10, 0, 0, 0, time.UTC),
		Signal:     "EDS",
		Kind:       KindHyperspectral,
		Elements:   []string{"C", "Pb"},
	}
	acq.WriteTo(w.Root().CreateGroup("metadata").CreateGroup("acquisition"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMicroscopeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.emdg")
	writeContainer(t, path)
	f, err := emd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, ok := f.Root().Lookup(MicroscopeGroup)
	if !ok {
		t.Fatal("microscope group missing")
	}
	m, err := MicroscopeFrom(g)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleMicroscope()
	if *m != *want {
		t.Errorf("microscope round trip mismatch:\n got %+v\nwant %+v", m, want)
	}
}

func TestExtract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.emdg")
	writeContainer(t, path)
	f, err := emd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	exp, err := Extract(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	if exp.Acquisition.SampleName != "film-42" {
		t.Errorf("sample = %q", exp.Acquisition.SampleName)
	}
	if len(exp.Acquisition.Shape) != 3 || exp.Acquisition.Shape[2] != 8 {
		t.Errorf("shape = %v", exp.Acquisition.Shape)
	}
	if exp.Acquisition.DTypeName != "uint16" {
		t.Errorf("dtype = %q", exp.Acquisition.DTypeName)
	}
	if !strings.HasPrefix(exp.ID, "exp-") {
		t.Errorf("id = %q", exp.ID)
	}
	if exp.PublicationYear != 2023 {
		t.Errorf("year = %d", exp.PublicationYear)
	}
	// Subjects should include the kind, signal and elements.
	joined := strings.Join(exp.Subjects, ",")
	for _, want := range []string{KindHyperspectral, "EDS", "Pb"} {
		if !strings.Contains(joined, want) {
			t.Errorf("subjects %v missing %q", exp.Subjects, want)
		}
	}
	// JSON must marshal.
	if _, err := exp.JSON(); err != nil {
		t.Error(err)
	}
}

func TestExtractMissingGroups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bare.emdg")
	w, _ := emd.Create(path)
	g := w.Root().CreateGroup("data")
	ds, _ := w.CreateDataset(g, "d", tensor.Float64, tensor.Shape{1}, emd.DatasetOptions{})
	ds.WriteAll(tensor.New(1))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := emd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Extract(f); err == nil {
		t.Error("Extract without metadata groups should fail")
	}
}

func TestRecordIDStable(t *testing.T) {
	at := time.Date(2023, 1, 2, 3, 4, 5, 0, time.UTC)
	a := RecordID("sample", at)
	b := RecordID("sample", at)
	if a != b {
		t.Error("RecordID not stable")
	}
	if a == RecordID("other", at) {
		t.Error("RecordID should depend on sample")
	}
	if a == RecordID("sample", at.Add(time.Second)) {
		t.Error("RecordID should depend on time")
	}
}

func TestValidate(t *testing.T) {
	base := func() *Experiment {
		return &Experiment{
			ID:          "exp-1",
			Title:       "t",
			Microscope:  sampleMicroscope(),
			Acquisition: &Acquisition{Collected: time.Now()},
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("valid experiment rejected: %v", err)
	}
	e := base()
	e.ID = ""
	if e.Validate() == nil {
		t.Error("missing ID accepted")
	}
	e = base()
	e.Microscope = nil
	if e.Validate() == nil {
		t.Error("missing microscope accepted")
	}
	e = base()
	e.Acquisition.Collected = time.Time{}
	if e.Validate() == nil {
		t.Error("missing collection time accepted")
	}
}
