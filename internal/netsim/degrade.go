package netsim

import (
	"fmt"
	"time"
)

// Time-varying degradation: beyond the binary outage windows the facility
// layer models, real WAN paths degrade gradually — congestion squalls that
// shave capacity and add loss/jitter, then clear. A Degradation describes
// one such episode on one link with a trapezoidal envelope: effects ramp
// linearly from zero at Start to full strength at PeakStart, hold through
// PeakEnd, and ramp back to zero at End. PeakStart == Start and
// PeakEnd == End degenerate to a step. The fluid-flow allocator treats a
// ramp as piecewise constant: Network.Degrade schedules reallocation
// events at the peak/end boundaries and at rampSteps sub-steps across
// each ramp, so in-flight transfers are re-settled and re-allocated as
// the capacity moves.

// rampSteps is the number of piecewise-constant segments a capacity ramp
// is discretized into for the fluid-flow allocator.
const rampSteps = 8

// Degradation is one impairment episode on a link.
type Degradation struct {
	// Start..End bound the episode; PeakStart..PeakEnd bound its plateau.
	Start, End         time.Time
	PeakStart, PeakEnd time.Time
	// CapacityFactor scales the link's nominal capacity at peak strength
	// (1 = unchanged, 0.05 = a squall that takes 95% of the bandwidth).
	// Values outside (0, 1] are clamped: <= 0 blocks the link entirely at
	// peak.
	CapacityFactor float64
	// Loss is the packet-loss fraction probes observe at peak strength.
	Loss float64
	// Jitter is the RTT spread (standard deviation) probes observe at peak
	// strength.
	Jitter time.Duration
	// ExtraRTT is the added round-trip time at peak strength (bufferbloat
	// under the squall).
	ExtraRTT time.Duration
}

// strength returns the episode's envelope in [0, 1] at instant t: 0
// outside [Start, End), ramping linearly to 1 inside the plateau.
func (d Degradation) strength(t time.Time) float64 {
	if t.Before(d.Start) || !t.Before(d.End) {
		return 0
	}
	if t.Before(d.PeakStart) {
		ramp := d.PeakStart.Sub(d.Start).Seconds()
		if ramp <= 0 {
			return 1
		}
		return t.Sub(d.Start).Seconds() / ramp
	}
	if !t.Before(d.PeakEnd) {
		ramp := d.End.Sub(d.PeakEnd).Seconds()
		if ramp <= 0 {
			return 1
		}
		return d.End.Sub(t).Seconds() / ramp
	}
	return 1
}

// Conditions is the instantaneous impairment state of a link or path.
type Conditions struct {
	// CapacityFactor multiplies the nominal capacity (1 = healthy).
	CapacityFactor float64
	// Loss is the packet-loss fraction.
	Loss float64
	// Jitter is the RTT spread.
	Jitter time.Duration
	// ExtraRTT is the added round-trip time.
	ExtraRTT time.Duration
}

// ConditionsAt resolves the link's combined impairment state at t.
// Overlapping episodes compose: capacity factors multiply, losses combine
// as independent drop probabilities, jitter and extra RTT add.
func (l *Link) ConditionsAt(t time.Time) Conditions {
	c := Conditions{CapacityFactor: 1}
	for _, d := range l.degradations {
		s := d.strength(t)
		if s <= 0 {
			continue
		}
		factor := d.CapacityFactor
		if factor > 1 {
			factor = 1
		}
		if factor < 0 {
			factor = 0
		}
		// Interpolate the factor toward 1 at partial strength.
		c.CapacityFactor *= 1 - s*(1-factor)
		loss := d.Loss * s
		c.Loss = 1 - (1-c.Loss)*(1-loss)
		c.Jitter += time.Duration(s * float64(d.Jitter))
		c.ExtraRTT += time.Duration(s * float64(d.ExtraRTT))
	}
	return c
}

// CapacityAt returns the link's effective capacity at t.
func (l *Link) CapacityAt(t time.Time) float64 {
	return l.Capacity * l.ConditionsAt(t).CapacityFactor
}

// PathState is the instantaneous measurable state of a path — what a
// probe riding the same links as the transfers would see.
type PathState struct {
	// RTT is the healthy round-trip time plus degradation-added latency,
	// summed over the path's links.
	RTT time.Duration
	// Jitter is the path's RTT spread (links' jitters summed — a
	// conservative composition).
	Jitter time.Duration
	// Loss is the end-to-end loss fraction (independent per-link drops).
	Loss float64
	// BottleneckBps is the tightest effective link capacity on the path.
	BottleneckBps float64
}

// PathStateAt resolves the measurable state of a multi-link path at t.
func PathStateAt(path []*Link, t time.Time) PathState {
	st := PathState{}
	for i, l := range path {
		c := l.ConditionsAt(t)
		st.RTT += l.BaseRTT + c.ExtraRTT
		st.Jitter += c.Jitter
		st.Loss = 1 - (1-st.Loss)*(1-c.Loss)
		cap := l.Capacity * c.CapacityFactor
		if i == 0 || cap < st.BottleneckBps {
			st.BottleneckBps = cap
		}
	}
	return st
}

// Degrade attaches a degradation episode to a link and schedules the
// reallocation events that make in-flight transfers feel it: one at each
// envelope boundary, plus rampSteps sub-steps across each ramp so the
// fluid-flow model tracks the changing capacity piecewise. Episodes whose
// capacity effect is nil (CapacityFactor >= 1) still register for probes
// but schedule nothing. Must be called from kernel-driven code (or before
// the kernel runs), like every other Network method.
func (n *Network) Degrade(l *Link, d Degradation) {
	if !d.End.After(d.Start) {
		panic(fmt.Sprintf("netsim: degradation on %q must end after it starts", l.Name))
	}
	if d.PeakStart.Before(d.Start) {
		d.PeakStart = d.Start
	}
	if d.PeakEnd.After(d.End) {
		d.PeakEnd = d.End
	}
	if d.PeakEnd.Before(d.PeakStart) {
		d.PeakEnd = d.PeakStart
	}
	l.degradations = append(l.degradations, d)
	if d.CapacityFactor >= 1 {
		return
	}
	at := func(t time.Time) {
		n.k.At(t, func() {
			if len(n.active) == 0 {
				return
			}
			n.settle()
			n.reallocate()
		})
	}
	step := func(from, to time.Time) {
		span := to.Sub(from)
		if span <= 0 {
			return
		}
		for i := 1; i <= rampSteps; i++ {
			at(from.Add(span * time.Duration(i) / rampSteps))
		}
	}
	at(d.Start)
	step(d.Start, d.PeakStart)
	step(d.PeakEnd, d.End)
	at(d.End)
}
