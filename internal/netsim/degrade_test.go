package netsim

import (
	"testing"
	"time"

	"picoprobe/internal/sim"
)

// TestDegradationStepSlowsTransfer drives a transfer across a step squall
// and checks the piecewise-exact completion time: 100 Mbps for 10 s,
// 10 Mbps for the 10 s squall, then 100 Mbps again.
func TestDegradationStepSlowsTransfer(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	l := n.AddLink("wan", 100e6)
	epoch := k.Now()
	n.Degrade(l, Degradation{
		Start: epoch.Add(10 * time.Second), PeakStart: epoch.Add(10 * time.Second),
		PeakEnd: epoch.Add(20 * time.Second), End: epoch.Add(20 * time.Second),
		CapacityFactor: 0.1,
	})
	// 2e9 bits: 1e9 pre-squall + 1e8 during + 0.9e9 after = 29 s.
	tr := n.Start("t", []*Link{l}, 250_000_000, 0)
	k.Run()
	res, err := tr.Done.Value()
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	got := res.Duration()
	want := 29 * time.Second
	if diff := got - want; diff < -50*time.Millisecond || diff > 50*time.Millisecond {
		t.Fatalf("squalled transfer took %v, want ~%v", got, want)
	}
}

// TestDegradationMidSquallStart starts a transfer inside the squall and
// checks it picks up the degraded rate, then recovers at the boundary.
func TestDegradationMidSquallStart(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	l := n.AddLink("wan", 100e6)
	epoch := k.Now()
	n.Degrade(l, Degradation{
		Start: epoch.Add(10 * time.Second), PeakStart: epoch.Add(10 * time.Second),
		PeakEnd: epoch.Add(20 * time.Second), End: epoch.Add(20 * time.Second),
		CapacityFactor: 0.1,
	})
	var got time.Duration
	k.At(epoch.Add(15*time.Second), func() {
		// 4e8 bits: 5 s at 10 Mbps (5e7) + 3.5e8 at 100 Mbps (3.5 s) = 8.5 s.
		tr := n.Start("t", []*Link{l}, 50_000_000, 0)
		tr.Done.OnDone(func(res Result, err error) {
			if err != nil {
				t.Errorf("transfer failed: %v", err)
			}
			got = res.Duration()
		})
	})
	k.Run()
	want := 8500 * time.Millisecond
	if diff := got - want; diff < -50*time.Millisecond || diff > 50*time.Millisecond {
		t.Fatalf("mid-squall transfer took %v, want ~%v", got, want)
	}
}

// TestDegradationRampBounds checks a ramped squall lands between the
// healthy and fully-squalled extremes, and that two identical runs agree
// bit-for-bit (determinism of the piecewise discretization).
func TestDegradationRampBounds(t *testing.T) {
	run := func(ramp bool) time.Duration {
		k := sim.NewKernel()
		n := New(k)
		l := n.AddLink("wan", 100e6)
		epoch := k.Now()
		d := Degradation{
			Start: epoch, PeakStart: epoch, PeakEnd: epoch.Add(60 * time.Second),
			End: epoch.Add(60 * time.Second), CapacityFactor: 0.2,
		}
		if ramp {
			// Ramp down over the first 30 s, recover over the last 10 s.
			d.PeakStart = epoch.Add(30 * time.Second)
			d.PeakEnd = epoch.Add(50 * time.Second)
		}
		n.Degrade(l, d)
		tr := n.Start("t", []*Link{l}, 200_000_000, 0)
		k.Run()
		res, err := tr.Done.Value()
		if err != nil {
			t.Fatalf("transfer failed: %v", err)
		}
		return res.Duration()
	}
	healthy := func() time.Duration {
		k := sim.NewKernel()
		n := New(k)
		l := n.AddLink("wan", 100e6)
		tr := n.Start("t", []*Link{l}, 200_000_000, 0)
		k.Run()
		res, _ := tr.Done.Value()
		return res.Duration()
	}()
	ramped, stepped := run(true), run(false)
	if !(healthy < ramped && ramped < stepped) {
		t.Fatalf("want healthy (%v) < ramped (%v) < stepped (%v)", healthy, ramped, stepped)
	}
	if again := run(true); again != ramped {
		t.Fatalf("ramped run not deterministic: %v vs %v", ramped, again)
	}
}

// TestPathStateAt checks the probe-visible composition of conditions
// along a path: RTTs and jitters add, losses combine independently, and
// the bottleneck is the tightest effective capacity.
func TestPathStateAt(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddLink("a", 1e9)
	b := n.AddLink("b", 400e6)
	a.BaseRTT = 2 * time.Millisecond
	b.BaseRTT = 20 * time.Millisecond
	epoch := k.Now()
	n.Degrade(b, Degradation{
		Start: epoch, PeakStart: epoch,
		PeakEnd: epoch.Add(time.Minute), End: epoch.Add(time.Minute),
		CapacityFactor: 0.5, Loss: 0.1, Jitter: 30 * time.Millisecond, ExtraRTT: 40 * time.Millisecond,
	})
	st := PathStateAt([]*Link{a, b}, epoch.Add(10*time.Second))
	if want := 62 * time.Millisecond; st.RTT != want {
		t.Errorf("RTT = %v, want %v", st.RTT, want)
	}
	if want := 30 * time.Millisecond; st.Jitter != want {
		t.Errorf("Jitter = %v, want %v", st.Jitter, want)
	}
	if st.Loss < 0.0999 || st.Loss > 0.1001 {
		t.Errorf("Loss = %v, want 0.1", st.Loss)
	}
	if want := 200e6; st.BottleneckBps != want {
		t.Errorf("Bottleneck = %v, want %v", st.BottleneckBps, want)
	}
	// Outside the episode everything is healthy again.
	st = PathStateAt([]*Link{a, b}, epoch.Add(2*time.Minute))
	if st.Loss != 0 || st.Jitter != 0 || st.RTT != 22*time.Millisecond || st.BottleneckBps != 400e6 {
		t.Errorf("healthy state = %+v", st)
	}
}
