package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"picoprobe/internal/sim"
)

const (
	mbit = 1e6
	gbit = 1e9
)

func run(t *testing.T, k *sim.Kernel) {
	t.Helper()
	k.Run()
	if err := k.Err(); err != nil {
		t.Fatalf("kernel error: %v", err)
	}
}

func TestSingleFlowAnalytic(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("switch", gbit)
	tr := n.Start("t", []*Link{link}, 125_000_000, 0) // 1 Gbit of data over 1 Gbps
	run(t, k)
	res, err := tr.Done.Value()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Duration(), time.Second; absDur(got-want) > time.Millisecond {
		t.Errorf("duration = %v, want ~%v", got, want)
	}
}

func TestPerStreamCapDominates(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("switch", gbit)
	tr := n.Start("t", []*Link{link}, 125_000_000, 100*mbit) // capped to 100 Mbit/s
	run(t, k)
	res, _ := tr.Done.Value()
	if got, want := res.Duration(), 10*time.Second; absDur(got-want) > 10*time.Millisecond {
		t.Errorf("duration = %v, want ~%v", got, want)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("switch", gbit)
	a := n.Start("a", []*Link{link}, 125_000_000, 0)
	b := n.Start("b", []*Link{link}, 125_000_000, 0)
	run(t, k)
	ra, _ := a.Done.Value()
	rb, _ := b.Done.Value()
	// Both started together and share equally, so both take ~2s.
	for _, r := range []Result{ra, rb} {
		if got, want := r.Duration(), 2*time.Second; absDur(got-want) > 10*time.Millisecond {
			t.Errorf("duration = %v, want ~%v", got, want)
		}
	}
}

func TestLateJoinerPiecewiseProgress(t *testing.T) {
	// Flow A alone for 0.5s at full rate, then shares with B. A has 1 Gbit
	// total: 0.5 Gbit done alone, remaining 0.5 Gbit at 0.5 Gbps -> +1s,
	// finishing at t=1.5s. B (1 Gbit) then runs alone: has 0.5 Gbit done at
	// t=1.5, finishes remaining 0.5 Gbit at full rate by t=2.0s.
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("switch", gbit)
	a := n.Start("a", []*Link{link}, 125_000_000, 0)
	var b *Transfer
	k.After(500*time.Millisecond, func() {
		b = n.Start("b", []*Link{link}, 125_000_000, 0)
	})
	run(t, k)
	ra, _ := a.Done.Value()
	rb, _ := b.Done.Value()
	if got, want := ra.End.Sub(sim.DefaultEpoch), 1500*time.Millisecond; absDur(got-want) > 10*time.Millisecond {
		t.Errorf("A end = %v, want ~%v", got, want)
	}
	if got, want := rb.End.Sub(sim.DefaultEpoch), 2000*time.Millisecond; absDur(got-want) > 10*time.Millisecond {
		t.Errorf("B end = %v, want ~%v", got, want)
	}
}

func TestBottleneckAcrossTwoLinks(t *testing.T) {
	// f1 on L1 only; f2 on L1+L2; f3 on L2 only. L1=10, L2=12 (Mbit/s).
	// Max-min: f1=f2=5 (L1 saturates), f3 = 12-5 = 7.
	k := sim.NewKernel()
	n := New(k)
	l1 := n.AddLink("L1", 10*mbit)
	l2 := n.AddLink("L2", 12*mbit)
	f1 := n.Start("f1", []*Link{l1}, 1<<30, 0)
	f2 := n.Start("f2", []*Link{l1, l2}, 1<<30, 0)
	f3 := n.Start("f3", []*Link{l2}, 1<<30, 0)
	// Inspect rates after allocation without running to completion.
	if got := f1.Rate(); math.Abs(got-5*mbit) > 1 {
		t.Errorf("f1 rate = %v, want 5 Mbit/s", got)
	}
	if got := f2.Rate(); math.Abs(got-5*mbit) > 1 {
		t.Errorf("f2 rate = %v, want 5 Mbit/s", got)
	}
	if got := f3.Rate(); math.Abs(got-7*mbit) > 1 {
		t.Errorf("f3 rate = %v, want 7 Mbit/s", got)
	}
}

func TestZeroByteTransferInstant(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("l", gbit)
	tr := n.Start("empty", []*Link{link}, 0, 0)
	run(t, k)
	if !tr.Done.Done() {
		t.Fatal("zero-byte transfer did not complete")
	}
	res, _ := tr.Done.Value()
	if res.Duration() != 0 {
		t.Errorf("duration = %v, want 0", res.Duration())
	}
}

func TestUnconstrainedTransferInstant(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	tr := n.Start("free", nil, 1<<20, 0)
	run(t, k)
	if !tr.Done.Done() {
		t.Fatal("unconstrained transfer did not complete")
	}
}

func TestAddLinkRejectsNonPositiveCapacity(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	defer func() {
		if recover() == nil {
			t.Error("AddLink with zero capacity should panic")
		}
	}()
	n.AddLink("bad", 0)
}

func TestManyFlowsAllComplete(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	link := n.AddLink("l", gbit)
	var trs []*Transfer
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		size := int64(rng.Intn(10_000_000) + 1)
		delay := time.Duration(rng.Intn(1000)) * time.Millisecond
		k.After(delay, func() {
			trs = append(trs, n.Start("t", []*Link{link}, size, 0))
		})
	}
	run(t, k)
	if len(trs) != 50 {
		t.Fatalf("started %d transfers", len(trs))
	}
	for i, tr := range trs {
		if !tr.Done.Done() {
			t.Errorf("transfer %d never completed", i)
		}
	}
	if n.Active() != 0 {
		t.Errorf("Active = %d after run", n.Active())
	}
}

// Property: the max-min allocation is feasible (no link oversubscribed) and
// max-min optimal (every flow is bottlenecked: it sits at its cap, or on a
// saturated link where it receives a maximal share).
func TestPropertyMaxMinFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nLinks := rng.Intn(5) + 1
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = &Link{Name: string(rune('A' + i)), Capacity: float64(rng.Intn(99)+1) * mbit}
		}
		nFlows := rng.Intn(8) + 1
		flows := make([]*Transfer, nFlows)
		for i := range flows {
			// Random non-empty subset of links.
			var path []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = []*Link{links[rng.Intn(nLinks)]}
			}
			var cap float64
			if rng.Intn(3) == 0 {
				cap = float64(rng.Intn(50)+1) * mbit
			}
			flows[i] = &Transfer{ID: i, path: path, capBps: cap, remaining: 1e9}
		}
		maxMinFill(links, flows, time.Time{})

		// Feasibility.
		for _, l := range links {
			sum := 0.0
			for _, f := range flows {
				for _, pl := range f.path {
					if pl == l {
						sum += f.rate
					}
				}
			}
			if sum > l.Capacity*(1+1e-6) {
				t.Fatalf("trial %d: link %s oversubscribed: %v > %v", trial, l.Name, sum, l.Capacity)
			}
		}
		// Caps respected and every flow bottlenecked somewhere.
		for _, f := range flows {
			if f.capBps > 0 && f.rate > f.capBps*(1+1e-6) {
				t.Fatalf("trial %d: flow %d exceeds cap: %v > %v", trial, f.ID, f.rate, f.capBps)
			}
			if f.capBps > 0 && math.Abs(f.rate-f.capBps) < 1e-3 {
				continue // bottlenecked at its own cap
			}
			bottlenecked := false
			for _, l := range f.path {
				sum, maxRate := 0.0, 0.0
				for _, g := range flows {
					for _, pl := range g.path {
						if pl == l {
							sum += g.rate
							if g.rate > maxRate {
								maxRate = g.rate
							}
						}
					}
				}
				if sum >= l.Capacity*(1-1e-6) && f.rate >= maxRate*(1-1e-6) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("trial %d: flow %d (rate %v) not bottlenecked anywhere", trial, f.ID, f.rate)
			}
		}
	}
}

// Property: total bytes are conserved — the integral of allocated rate over
// each transfer's lifetime equals its size (validated via completion times
// of randomized staggered workloads re-simulated analytically).
func TestPropertyWorkConservationSimple(t *testing.T) {
	// n equal flows started together on one link must finish together at
	// n * (single-flow time), for several n.
	for _, nf := range []int{1, 2, 3, 5, 8} {
		k := sim.NewKernel()
		n := New(k)
		link := n.AddLink("l", 100*mbit)
		bytes := int64(12_500_000) // 100 Mbit -> 1s alone
		var trs []*Transfer
		for i := 0; i < nf; i++ {
			trs = append(trs, n.Start("t", []*Link{link}, bytes, 0))
		}
		run(t, k)
		want := time.Duration(nf) * time.Second
		for _, tr := range trs {
			res, _ := tr.Done.Value()
			if absDur(res.Duration()-want) > 50*time.Millisecond {
				t.Errorf("n=%d: duration = %v, want ~%v", nf, res.Duration(), want)
			}
		}
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
