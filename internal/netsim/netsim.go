// Package netsim models shared networks with a deterministic fluid-flow
// approximation: concurrent transfers on a path of links receive max-min
// fair bandwidth allocations (computed by progressive filling), and
// completion events fire on the simulation kernel at the analytically exact
// finish instants.
//
// This is the substrate beneath the simulated Globus-Transfer-like service:
// it reproduces the bandwidth regimes the paper describes — the instrument's
// 1 Gbps user-machine switch, the 200 Gbps laboratory backbone, and the
// per-stream WAN throughput that makes file transfer the dominant active
// cost of each data flow.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"picoprobe/internal/sim"
)

// completionSlack is the residual (in bits) below which a transfer is
// considered finished. One byte of slack absorbs the nanosecond rounding of
// event scheduling and is negligible at the megabyte scales simulated here.
const completionSlack = 8.0

// Link is a shared network segment with a nominal capacity in bits per
// second. Degradation episodes (Network.Degrade) scale the capacity and
// add loss/jitter/latency over time; CapacityAt and ConditionsAt resolve
// the effective state at an instant.
type Link struct {
	Name     string
	Capacity float64 // nominal, bits per second
	// BaseRTT is this segment's round-trip-time contribution under healthy
	// conditions. It does not affect fluid-flow transfer times — only
	// probes (PathStateAt) observe it — so setting it on existing
	// topologies leaves every transfer timeline untouched.
	BaseRTT time.Duration

	degradations []Degradation
}

// Transfer is one active or finished bulk data movement.
type Transfer struct {
	ID    int
	Name  string
	Bytes int64
	// Done resolves with the transfer result when the last bit arrives.
	Done *sim.Future[Result]

	path      []*Link
	capBps    float64 // per-stream rate cap; 0 means uncapped
	remaining float64 // bits
	rate      float64 // current allocated rate, bits/s
	started   time.Time
}

// Rate returns the transfer's current bandwidth allocation in bits per
// second (0 once finished).
func (t *Transfer) Rate() float64 { return t.rate }

// Result describes a completed transfer.
type Result struct {
	Start, End time.Time
	Bytes      int64
}

// Duration returns the wall time the transfer took.
func (r Result) Duration() time.Duration { return r.End.Sub(r.Start) }

// Throughput returns the effective rate in bits per second.
func (r Result) Throughput() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return math.Inf(1)
	}
	return float64(r.Bytes) * 8 / d
}

// Network simulates a set of links shared by concurrent transfers. All
// methods must be called from code driven by the owning kernel.
type Network struct {
	k          *sim.Kernel
	links      []*Link
	active     []*Transfer
	nextID     int
	lastUpdate time.Time
	version    uint64 // invalidates stale completion events
}

// New returns an empty network driven by kernel k.
func New(k *sim.Kernel) *Network {
	return &Network{k: k, lastUpdate: k.Now()}
}

// AddLink creates a link with the given capacity in bits per second.
func (n *Network) AddLink(name string, capacityBps float64) *Link {
	if capacityBps <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity must be positive", name))
	}
	l := &Link{Name: name, Capacity: capacityBps}
	n.links = append(n.links, l)
	return l
}

// Active returns the number of in-flight transfers.
func (n *Network) Active() int { return len(n.active) }

// Start begins a transfer of the given size along path, optionally capped at
// capBps per stream (0 = uncapped). It returns immediately; the transfer's
// Done future resolves at the simulated completion instant. A transfer with
// no path and no cap, or with zero bytes, completes instantly.
func (n *Network) Start(name string, path []*Link, bytes int64, capBps float64) *Transfer {
	t := &Transfer{
		ID:        n.nextID,
		Name:      name,
		Bytes:     bytes,
		Done:      sim.NewFuture[Result](n.k),
		path:      path,
		capBps:    capBps,
		remaining: float64(bytes) * 8,
		started:   n.k.Now(),
	}
	n.nextID++
	if t.remaining <= completionSlack || (len(path) == 0 && capBps <= 0) {
		t.remaining = 0
		t.Done.Resolve(Result{Start: t.started, End: n.k.Now(), Bytes: bytes}, nil)
		return t
	}
	n.settle()
	n.active = append(n.active, t)
	n.reallocate()
	return t
}

// settle advances every active transfer's progress to the current instant at
// its previously allocated rate.
func (n *Network) settle() {
	now := n.k.Now()
	dt := now.Sub(n.lastUpdate).Seconds()
	if dt > 0 {
		for _, t := range n.active {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// reallocate recomputes the max-min fair allocation, completes any finished
// transfers, and schedules the next completion event.
func (n *Network) reallocate() {
	// Complete transfers that have (within slack) drained.
	var still []*Transfer
	for _, t := range n.active {
		if t.remaining <= completionSlack {
			t.remaining = 0
			t.rate = 0
			t.Done.Resolve(Result{Start: t.started, End: n.k.Now(), Bytes: t.Bytes}, nil)
		} else {
			still = append(still, t)
		}
	}
	n.active = still
	if len(n.active) == 0 {
		n.version++
		return
	}

	maxMinFill(n.links, n.active, n.k.Now())

	// Schedule the earliest completion.
	n.version++
	version := n.version
	soonest := time.Duration(math.MaxInt64)
	for _, t := range n.active {
		if t.rate <= 0 {
			continue // fully blocked; cannot finish until the set changes
		}
		d := secondsToDuration(t.remaining/t.rate) + time.Nanosecond
		if d < soonest {
			soonest = d
		}
	}
	if soonest == time.Duration(math.MaxInt64) {
		return
	}
	n.k.After(soonest, func() {
		if n.version != version {
			return // superseded by a newer allocation
		}
		n.settle()
		n.reallocate()
	})
}

// constraint is a capacity shared by a set of transfers: either a real link
// or a per-stream cap modeled as a private virtual link.
type constraint struct {
	capacity float64
	members  []*Transfer
}

// fairLevel returns the equal split of the residual capacity among the
// constraint's unfrozen members. Frozen members' shares are already charged
// against the residual, so this is exactly the level at which the constraint
// would saturate.
func (c *constraint) fairLevel(residual float64, unfrozen int) float64 {
	return residual / float64(unfrozen)
}

// maxMinFill assigns max-min fair rates to the given transfers by
// progressive filling. Per-stream caps are handled as private virtual links.
// Link capacities are resolved at instant now, so degradation episodes
// reshape the allocation each time the network reallocates. Iteration
// order is deterministic (links by name, transfers by ID).
func maxMinFill(links []*Link, transfers []*Transfer, now time.Time) {
	var cons []*constraint
	byLink := map[*Link]*constraint{}

	ordered := append([]*Link(nil), links...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	for _, l := range ordered {
		c := &constraint{capacity: l.CapacityAt(now)}
		byLink[l] = c
		cons = append(cons, c)
	}
	ts := append([]*Transfer(nil), transfers...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	for _, t := range ts {
		t.rate = 0
		for _, l := range t.path {
			c := byLink[l]
			c.members = append(c.members, t)
		}
		if t.capBps > 0 {
			cons = append(cons, &constraint{capacity: t.capBps, members: []*Transfer{t}})
		}
	}

	frozen := map[*Transfer]bool{}
	remainingCap := make([]float64, len(cons))
	for i, c := range cons {
		remainingCap[i] = c.capacity
	}
	for len(frozen) < len(ts) {
		// Find the tightest constraint level among constraints with
		// unfrozen members.
		level := math.Inf(1)
		for i, c := range cons {
			unfrozen := 0
			for _, m := range c.members {
				if !frozen[m] {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			fair := c.fairLevel(remainingCap[i], unfrozen)
			if fair < level {
				level = fair
			}
		}
		if math.IsInf(level, 1) {
			// Remaining transfers are unconstrained (no links, no cap):
			// give them "infinite" rate so they finish immediately.
			for _, t := range ts {
				if !frozen[t] {
					t.rate = math.Inf(1)
					frozen[t] = true
				}
			}
			break
		}
		// Freeze every unfrozen member of the constraints that bind at
		// this level.
		progressed := false
		for i, c := range cons {
			unfrozen := 0
			for _, m := range c.members {
				if !frozen[m] {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			if c.fairLevel(remainingCap[i], unfrozen)-level <= 1e-9*math.Max(1, level) {
				for _, m := range c.members {
					if !frozen[m] {
						m.rate = level
						frozen[m] = true
						progressed = true
					}
				}
			}
		}
		if !progressed {
			// Numerical stalemate should be impossible; freeze everything
			// at the current level rather than looping forever.
			for _, t := range ts {
				if !frozen[t] {
					t.rate = level
					frozen[t] = true
				}
			}
		}
		// Charge frozen rates against every constraint they traverse.
		for i, c := range cons {
			used := 0.0
			for _, m := range c.members {
				used += m.rate
			}
			remainingCap[i] = c.capacity - used
			if remainingCap[i] < 0 {
				remainingCap[i] = 0
			}
		}
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Ceil(s * float64(time.Second)))
}
