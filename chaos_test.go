package picoprobe

// Chaos soak (DESIGN.md §12): a multi-daemon wire federation is run
// under a seeded random fault schedule — daemon kills and restarts,
// read stalls, connection flaps, corrupted frames — and must still land
// every byte intact with bounded retry amplification. The companion
// heartbeat test pins the detection budget: a hung daemon must be
// declared Down and shed from placement before a single transfer
// attempt's timeout could even fire, so detection is always cheaper
// than discovery-by-timeout.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"picoprobe/internal/auth"
	"picoprobe/internal/facility"
	"picoprobe/internal/health"
	"picoprobe/internal/netfault"
	"picoprobe/internal/scheduler"
	"picoprobe/internal/sim"
	"picoprobe/internal/transfer"
	"picoprobe/internal/wire"
)

// chaosDaemon is one killable in-process facility daemon: Close() is
// the kill, restart() rebinds the same address over the same storage
// root — exactly the operational story of a crashed daemon coming back.
type chaosDaemon struct {
	addr string
	root string
	id   string
	iss  *auth.Issuer
	srv  *wire.Server
}

func (d *chaosDaemon) start(t *testing.T) {
	t.Helper()
	d.srv = &wire.Server{
		Root:     d.root,
		Facility: d.id,
		Verify: func(tok string) error {
			_, err := d.iss.Verify(tok, auth.ScopeTransfer)
			return err
		},
	}
	var ln net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ln, err = net.Listen("tcp", d.addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %s could not rebind %s: %v", d.id, d.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.addr == "" || d.addr == "127.0.0.1:0" {
		d.addr = ln.Addr().String()
	}
	go d.srv.Serve(ln)
}

func (d *chaosDaemon) kill() { d.srv.Close() }

// TestChaosSoak: N daemons, a campaign of transfers, and a seeded
// random storm of kills, stalls, flaps, and corrupted frames while the
// campaign runs. The contract under chaos is absolute: every task
// completes, every landed file is byte-identical to its source, every
// daemon-verified checksum matches a locally computed one, and the
// total bytes pushed onto the wire stay within a small constant factor
// of the payload (resume + chunk re-send keep retries cheap).
func TestChaosSoak(t *testing.T) {
	nDaemons, nTasks, nEvents := 3, 12, 10
	if testing.Short() {
		nDaemons, nTasks, nEvents = 2, 6, 4
	}
	const (
		chunkBytes = 16 << 10
		nChunks    = 8
		fileBytes  = nChunks * chunkBytes
	)

	iss := auth.NewIssuer([]byte("chaos-secret"), nil)
	token, err := iss.Issue("operator@chaos", []string{auth.ScopeTransfer}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// Daemons, each with a client-side fault injector keyed by address so
	// the mover's dials route through the right chaos.
	daemons := make([]*chaosDaemon, nDaemons)
	faults := map[string]*netfault.Faults{}
	for i := range daemons {
		d := &chaosDaemon{addr: "127.0.0.1:0", root: t.TempDir(), id: fmt.Sprintf("chaos-%d", i), iss: iss}
		d.start(t)
		daemons[i] = d
		faults[d.addr] = &netfault.Faults{}
	}
	defer func() {
		for _, d := range daemons {
			d.kill()
		}
	}()
	routedDial := func(addr string) (net.Conn, error) {
		if f := faults[addr]; f != nil {
			return f.Dialer(nil)(addr)
		}
		return net.Dial("tcp", addr)
	}

	srcRoot := t.TempDir()
	mover := &transfer.WireMover{
		Checksum:         true,
		ChunkBytes:       chunkBytes,
		Streams:          2,
		ManifestDir:      filepath.Join(srcRoot, ".manifests"),
		Token:            token,
		Dial:             routedDial,
		Timeout:          2 * time.Second,
		BreakerThreshold: 4,
		BreakerCooldown:  150 * time.Millisecond,
		Backoff:          &wire.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
	}
	defer mover.Close()
	svc := transfer.NewService(iss, mover, time.Now, transfer.Options{
		MaxAttempts:  40,
		RetryBackoff: &wire.Backoff{Base: 15 * time.Millisecond, Max: 250 * time.Millisecond},
	})
	if err := svc.RegisterEndpoint(transfer.Endpoint{ID: "src", Root: srcRoot}); err != nil {
		t.Fatal(err)
	}
	for i, d := range daemons {
		if err := svc.RegisterEndpoint(transfer.Endpoint{ID: fmt.Sprintf("fac-%d", i), Root: d.addr}); err != nil {
			t.Fatal(err)
		}
	}

	// Stage the campaign up front; tasks are SUBMITTED inside the storm
	// loop below so faults always land on transfers in flight. A small
	// read delay on every path stretches each transfer across several
	// fault events instead of letting loopback finish it instantly.
	type soakTask struct {
		id, rel string
		daemon  int
		data    []byte
	}
	tasks := make([]*soakTask, nTasks)
	var totalPayload int64
	for i := range tasks {
		rel := fmt.Sprintf("soak/task-%02d.emdg", i)
		data := make([]byte, fileBytes)
		deterministicFill(data, uint32(0xC4A05+i))
		if err := os.MkdirAll(filepath.Join(srcRoot, filepath.Dir(rel)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(srcRoot, rel), data, 0o644); err != nil {
			t.Fatal(err)
		}
		tasks[i] = &soakTask{rel: rel, daemon: i % nDaemons, data: data}
		totalPayload += fileBytes
	}
	submitted := 0
	submitNext := func(n int) {
		for ; n > 0 && submitted < nTasks; submitted++ {
			task := tasks[submitted]
			id, err := svc.Submit(token, "src", fmt.Sprintf("fac-%d", task.daemon), []transfer.FileSpec{{RelPath: task.rel}})
			if err != nil {
				t.Fatal(err)
			}
			task.id = id
			n--
		}
	}
	for _, f := range faults {
		f.SetReadDelay(2 * time.Millisecond)
	}

	// The storm: a seeded schedule so the fault sequence is reproducible
	// even though socket timing is not. Every fault self-clears — the
	// schedule always ends with the federation fully restored.
	rng := rand.New(rand.NewSource(0xC4A05))
	jitter := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo)) * time.Millisecond
	}
	perEvent := (nTasks + nEvents - 1) / nEvents
	for ev := 0; ev < nEvents; ev++ {
		submitNext(perEvent)
		j := rng.Intn(nDaemons)
		d, f := daemons[j], faults[daemons[j].addr]
		switch rng.Intn(4) {
		case 0: // crash and restart on the same address and root
			d.kill()
			time.Sleep(jitter(50, 150))
			d.start(t)
		case 1: // reads freeze, then thaw
			f.SetStalled(true)
			time.Sleep(jitter(100, 250))
			f.SetStalled(false)
		case 2: // all connections severed, dials refused, then restored
			f.Flap()
			time.Sleep(jitter(50, 200))
			f.Restore()
		case 3: // the next few frames arrive damaged
			f.CorruptNextWrites(1 + rng.Int63n(3))
		}
		time.Sleep(jitter(40, 120))
	}
	submitNext(nTasks)
	for _, d := range daemons {
		f := faults[d.addr]
		f.SetStalled(false)
		f.SetReadDelay(0)
		f.Restore()
	}

	// Zero lost or corrupt data: completion, daemon-verified checksums
	// against locally computed digests, and byte-identical landed files.
	totalAttempts := 0
	for _, task := range tasks {
		view := waitForTransfer(t, svc, token, task.id, transfer.StatusSucceeded)
		totalAttempts += view.Attempts
		sum := sha256.Sum256(task.data)
		if got := view.Checksums[task.rel]; got != hex.EncodeToString(sum[:]) {
			t.Errorf("%s: daemon checksum %s, want %s", task.rel, got, hex.EncodeToString(sum[:]))
		}
		landed, err := os.ReadFile(filepath.Join(daemons[task.daemon].root, task.rel))
		if err != nil {
			t.Errorf("%s: landed file unreadable: %v", task.rel, err)
			continue
		}
		if !bytes.Equal(landed, task.data) {
			t.Errorf("%s: landed bytes differ from source", task.rel)
		}
		if view.Attempts > 40 {
			t.Errorf("%s: %d attempts exceeds the configured budget", task.rel, view.Attempts)
		}
	}

	// Bounded retry amplification: resume-from-manifest and single-chunk
	// re-send mean a retry re-ships only what was lost, so even a
	// hostile schedule keeps wire traffic within a small constant factor
	// of the payload.
	var wireBytes int64
	for _, f := range faults {
		wireBytes += f.BytesWritten()
	}
	if limit := 4 * totalPayload; wireBytes > limit {
		t.Errorf("wrote %d bytes to move %d payload bytes (amplification %.1fx, limit 4x)",
			wireBytes, totalPayload, float64(wireBytes)/float64(totalPayload))
	}
	var flaps, stalls, corrupted, refused int64
	for _, f := range faults {
		flaps += f.Flaps()
		stalls += f.StalledReads()
		corrupted += f.CorruptedWrites()
		refused += f.RefusedDials()
	}
	t.Logf("soak: %d tasks, %d attempts, %d events (%d flaps, %d stalled reads, %d corrupted writes, %d refused dials), %.2fx amplification",
		nTasks, totalAttempts, nEvents, flaps, stalls, corrupted, refused, float64(wireBytes)/float64(totalPayload))
}

// TestHeartbeatDetectsHungDaemonBeforeTimeout pins the detection
// budget: a daemon that accepts connections but never answers (the
// worst hang — no RST to fail fast on) must be declared Down by the
// heartbeat monitor, shed from fresh placement, and failed over for
// sticky runs, all in far less time than one transfer attempt's
// timeout. Detection must win the race against the first burned
// attempt, otherwise the health layer adds nothing over timeouts.
func TestHeartbeatDetectsHungDaemonBeforeTimeout(t *testing.T) {
	iss := auth.NewIssuer([]byte("chaos-secret"), nil)
	token, err := iss.Issue("operator@chaos", []string{auth.ScopeTransfer}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	rt := sim.NewLiveRuntime(1)
	reg := facility.NewRegistry(rt, 0)
	addrs := make([]string, 2)
	var serverFaults *netfault.Faults
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("hb-%d", i)
		srv := &wire.Server{
			Root:     t.TempDir(),
			Facility: id,
			Verify: func(tok string) error {
				_, err := iss.Verify(tok, auth.ScopeTransfer)
				return err
			},
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Server-side injector: when stalled, daemon 0 keeps accepting
			// but its reads hang — connections look alive, nothing answers.
			serverFaults = &netfault.Faults{}
			ln = serverFaults.Listener(ln)
		}
		go srv.Serve(ln)
		defer srv.Close()
		addrs[i] = ln.Addr().String()

		fac, err := facility.New(rt, facility.Config{ID: id, Name: id, Sched: scheduler.Config{Nodes: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(fac); err != nil {
			t.Fatal(err)
		}
	}
	facs := reg.Facilities()

	mon := health.NewMonitor(rt, health.Config{
		Interval: 50 * time.Millisecond, SuspectAfter: 1, DownAfter: 3, UpAfter: 2,
	})
	for i, fac := range facs {
		// A check-sized timeout: the whole point is that probes are far
		// cheaper than transfer attempts.
		ht := &wire.HealthTarget{Client: &wire.Client{Addr: addrs[i], Token: token, Timeout: 250 * time.Millisecond}}
		defer ht.Close()
		if err := mon.Register(fac.PathID(), ht); err != nil {
			t.Fatal(err)
		}
	}
	reg.AttachHealth(mon)
	mon.Start(time.Time{})
	defer mon.Stop()

	waitState := func(pathID string, want health.State, deadline time.Duration) time.Duration {
		t.Helper()
		start := time.Now()
		for time.Since(start) < deadline {
			if st, ok := mon.Health(pathID); ok && st.State == want {
				return time.Since(start)
			}
			time.Sleep(5 * time.Millisecond)
		}
		st, _ := mon.Health(pathID)
		t.Fatalf("%s never reached %v (state %v after %d checks, %d fails)",
			pathID, want, st.State, st.Checks, st.Fails)
		return 0
	}

	// Healthy baseline: a sticky run placed on daemon 0 by constraint.
	if dec, err := reg.Place("run-sticky", facs[0].ID(), 1<<20); err != nil || dec.Facility.ID() != facs[0].ID() {
		t.Fatalf("baseline constraint placement: %+v, %v", dec, err)
	}

	// Hang daemon 0 and clock the detection.
	attemptTimeout := wire.DefaultTimeout
	serverFaults.SetStalled(true)
	detected := waitState(facs[0].PathID(), health.Down, attemptTimeout)
	if detected >= attemptTimeout {
		t.Fatalf("detection took %v, must beat the %v attempt timeout", detected, attemptTimeout)
	}
	t.Logf("hung daemon declared Down in %v (attempt timeout %v)", detected, attemptTimeout)

	// Detected outage sheds fresh placements...
	if dec, err := reg.Place("run-fresh", "", 1<<20); err != nil {
		t.Fatal(err)
	} else if dec.Facility.ID() != facs[1].ID() {
		t.Errorf("fresh placement landed on %s, want shed to %s", dec.Facility.ID(), facs[1].ID())
	}
	// ...and fails over sticky runs exactly like a planned outage.
	dec, err := reg.Place("run-sticky", "", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reason != facility.ReasonFailoverUnhealthy || dec.Facility.ID() != facs[1].ID() || dec.From != facs[0].ID() {
		t.Errorf("sticky failover = %s on %s from %s, want %s on %s from %s",
			dec.Reason, dec.Facility.ID(), dec.From,
			facility.ReasonFailoverUnhealthy, facs[1].ID(), facs[0].ID())
	}

	// Recovery: the stall clears, consecutive successes rejoin the
	// daemon, and fresh runs may land there again.
	serverFaults.SetStalled(false)
	waitState(facs[0].PathID(), health.Up, 10*time.Second)
}
