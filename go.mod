module picoprobe

go 1.24
