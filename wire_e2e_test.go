package picoprobe

// Wire transport, end to end (DESIGN.md §11): a real facility daemon
// process is killed with SIGKILL mid-transfer and a restarted daemon on
// the same port must let the client finish with O(remaining chunks)
// re-moved bytes and a verified whole-file checksum — the resume state
// lives entirely in the client's chunk manifest, the daemon carries
// nothing across the crash. TestWireCrossPathEquivalence is the other
// half of the wire gate: the same 24-file campaign through the
// in-process live mover and through a WireMover over localhost must
// produce identical checksums, chunk accounting, landed bytes, and
// catalog records (timings excluded).

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"picoprobe/internal/auth"
	"picoprobe/internal/compute"
	"picoprobe/internal/core"
	"picoprobe/internal/detect"
	"picoprobe/internal/netfault"
	"picoprobe/internal/search"
	"picoprobe/internal/transfer"
	"picoprobe/internal/wire"
)

// Env vars that turn TestWireDaemonChildProcess into the crash victim:
// the address to serve on and the storage root to serve from.
const (
	wireChildAddrEnv = "PICOPROBE_WIRE_CHILD_ADDR"
	wireChildRootEnv = "PICOPROBE_WIRE_CHILD_ROOT"
)

// TestWireDaemonChildProcess is not a test: re-executed by
// TestWireDaemonKillNineResume with the env vars set, it serves a
// facility daemon until the parent kills it with SIGKILL. The bind
// retries because a restarted child can race the dying listener's
// socket.
func TestWireDaemonChildProcess(t *testing.T) {
	addr := os.Getenv(wireChildAddrEnv)
	if addr == "" {
		t.Skip("helper process for TestWireDaemonKillNineResume")
	}
	iss := auth.NewIssuer([]byte(core.WireSecretDefault), nil)
	srv := &wire.Server{
		Root:     os.Getenv(wireChildRootEnv),
		Facility: "e2e-victim",
		Verify: func(tok string) error {
			_, err := iss.Verify(tok, auth.ScopeTransfer)
			return err
		},
	}
	var ln net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child could not bind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv.Serve(ln) // blocks until SIGKILL
}

// startWireDaemon launches the child daemon process and waits until its
// status endpoint answers.
func startWireDaemon(t *testing.T, addr, root, token string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWireDaemonChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), wireChildAddrEnv+"="+addr, wireChildRootEnv+"="+root)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cl := &wire.Client{Addr: addr, Token: token, Timeout: 2 * time.Second}
	defer cl.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, _, err := cl.Status(0); err == nil {
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon on %s never became ready", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWireDaemonKillNineResume is the wire kill-and-resume acceptance
// gate: SIGKILL a real daemon process mid-transfer, restart it on the
// same port, and the client's retry must complete the transfer moving
// only the chunks the first attempt did not land — O(remaining chunks)
// re-moved bytes, whole-file checksum verified by the daemon's merge.
func TestWireDaemonKillNineResume(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-specific")
	}
	iss := auth.NewIssuer([]byte(core.WireSecretDefault), nil)
	token, err := iss.Issue("operator@picoprobe", []string{auth.ScopeTransfer}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// Reserve a port for the daemon so the restart lands on the same
	// address the manifest-side client keeps dialing.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	srcRoot, dstRoot := t.TempDir(), t.TempDir()
	const (
		rel        = "campaign/victim.emdg"
		chunkBytes = 64 << 10
		nChunks    = 128
	)
	data := make([]byte, nChunks*chunkBytes)
	deterministicFill(data, 0xE2E)
	if err := os.MkdirAll(filepath.Join(srcRoot, filepath.Dir(rel)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcRoot, rel), data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := startWireDaemon(t, addr, dstRoot, token)
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The fault dialer is only a window: its shared write counter tells
	// the parent how far the transfer got, and a small read delay
	// stretches the transfer so the kill reliably lands mid-flight.
	faults := &netfault.Faults{}
	faults.SetReadDelay(2 * time.Millisecond)
	mover := &transfer.WireMover{
		Checksum:    true,
		ChunkBytes:  chunkBytes,
		Streams:     2,
		ManifestDir: filepath.Join(srcRoot, ".manifests"),
		Token:       token,
		Dial:        faults.Dialer(nil),
		Timeout:     20 * time.Second,
	}
	defer mover.Close()
	svc := transfer.NewService(iss, mover, time.Now, transfer.Options{MaxAttempts: 1})
	svc.RegisterEndpoint(transfer.Endpoint{ID: "src", Root: srcRoot})
	svc.RegisterEndpoint(transfer.Endpoint{ID: "dst", Root: addr})

	id1, err := svc.Submit(token, "src", "dst", []transfer.FileSpec{{RelPath: rel}})
	if err != nil {
		t.Fatal(err)
	}

	// Kill -9 once a healthy fraction of the chunks crossed the wire but
	// well before all of them could have.
	deadline := time.Now().Add(30 * time.Second)
	for faults.Writes() < 40 {
		if time.Now().After(deadline) {
			t.Fatal("transfer never got far enough to kill")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no daemon shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	v1 := waitForTransfer(t, svc, token, id1, transfer.StatusFailed)
	if v1.ChunksMoved == 0 || v1.ChunksMoved >= nChunks {
		t.Fatalf("first attempt moved %d of %d chunks — the kill did not land mid-transfer", v1.ChunksMoved, nChunks)
	}
	t.Logf("killed daemon after %d/%d chunks landed", v1.ChunksMoved, nChunks)

	// Restart the daemon on the same port — fresh process, no state
	// beyond the partially-landed file — and let the client finish.
	faults.SetReadDelay(0)
	cmd2 := startWireDaemon(t, addr, dstRoot, token)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()

	id2, err := svc.Submit(token, "src", "dst", []transfer.FileSpec{{RelPath: rel}})
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitForTransfer(t, svc, token, id2, transfer.StatusSucceeded)

	// O(remaining chunks): every chunk the first attempt landed is
	// hash-verified remotely and skipped; only the rest cross the wire.
	if v2.ChunksSkipped+v2.ChunksMoved != nChunks {
		t.Errorf("resume skipped %d + moved %d != %d chunks", v2.ChunksSkipped, v2.ChunksMoved, nChunks)
	}
	if v2.ChunksSkipped < v1.ChunksMoved {
		t.Errorf("resume skipped %d chunks, want at least the %d the first attempt landed", v2.ChunksSkipped, v1.ChunksMoved)
	}
	if want := int64(v2.ChunksMoved) * chunkBytes; v2.BytesCopied != want {
		t.Errorf("resume copied %d bytes, want %d (%d chunks) — re-moved more than the remainder", v2.BytesCopied, want, v2.ChunksMoved)
	}

	// The whole-file checksum is the daemon merge's digest of what is
	// actually on its disk — and it must match the source bytes.
	sum := sha256.Sum256(data)
	if v2.Checksums[rel] != hex.EncodeToString(sum[:]) {
		t.Errorf("merged checksum %s, want %s", v2.Checksums[rel], hex.EncodeToString(sum[:]))
	}
	landed, err := os.ReadFile(filepath.Join(dstRoot, rel))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(landed, data) {
		t.Error("file corrupted across the kill")
	}
}

// deterministicFill fills buf with a cheap seeded pattern (chunks must
// all differ so a misplaced chunk cannot alias a correct one).
func deterministicFill(buf []byte, seed uint32) {
	x := seed
	for i := range buf {
		x = x*1664525 + 1013904223
		buf[i] = byte(x >> 24)
	}
}

func waitForTransfer(t *testing.T, svc *transfer.Service, token, id string, want transfer.TaskStatus) transfer.TaskView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view, err := svc.Status(token, id)
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == want {
			return view
		}
		if view.Status != transfer.StatusActive {
			t.Fatalf("task %s reached %s (%s), want %s", id, view.Status, view.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("task %s never reached %s", id, want)
	return transfer.TaskView{}
}

// TestWireCrossPathEquivalence runs the same 24-file campaign through
// the in-process live deployment and through a wire deployment backed
// by a facility daemon on localhost, then requires the two paths to be
// indistinguishable: identical whole-file checksums, identical chunk
// accounting, byte-identical landed files, and identical catalog
// records (timings excluded) — the wire changes where the code runs,
// never what it produces.
func TestWireCrossPathEquivalence(t *testing.T) {
	const (
		nFiles     = 24
		chunkBytes = 64 << 10
		streams    = 2
	)

	// The in-process path.
	liveDir := t.TempDir()
	liveDep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot:     filepath.Join(liveDir, "instrument"),
		EagleRoot:          filepath.Join(liveDir, "eagle"),
		OutDir:             filepath.Join(liveDir, "out"),
		TransferChunkBytes: chunkBytes,
		TransferStreams:    streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer liveDep.Close()

	// The wire path: a daemon with the same analysis pool, reached over
	// a real socket.
	wireDir := t.TempDir()
	daemonRoot := filepath.Join(wireDir, "facility")
	outDir := filepath.Join(daemonRoot, "analysis-out")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	iss := auth.NewIssuer([]byte(core.WireSecretDefault), nil)
	registry := compute.NewRegistry()
	core.RegisterAnalysisFunctions(registry, outDir, detect.DefaultParams())
	csvc := compute.NewService(iss, registry, compute.NewLocalExecutor(2, nil), time.Now)
	ctok, err := iss.Issue("facilityd@equiv", []string{auth.ScopeCompute}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{
		Root:     daemonRoot,
		Facility: "equiv",
		Verify: func(tok string) error {
			_, err := iss.Verify(tok, auth.ScopeTransfer)
			return err
		},
		Compute:      csvc,
		ComputeToken: ctok,
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wireDep, err := core.NewWireDeployment(core.WireOptions{
		InstrumentRoot:     filepath.Join(wireDir, "instrument"),
		DaemonAddr:         addr,
		TransferChunkBytes: chunkBytes,
		TransferStreams:    streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wireDep.Close()

	// Stage the identical campaign in both instrument roots.
	rels := make([]string, nFiles)
	localSums := map[string]string{}
	for i := range rels {
		rel := fmt.Sprintf("eq-%02d.emdg", i)
		rels[i] = rel
		var staged []byte
		for _, root := range []string{liveDep.Options.InstrumentRoot, wireDep.Options.InstrumentRoot} {
			if err := core.WriteSyntheticAcquisition(filepath.Join(root, rel), "hyperspectral", i); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(root, rel))
			if err != nil {
				t.Fatal(err)
			}
			if staged == nil {
				staged = b
			} else if !bytes.Equal(staged, b) {
				t.Fatalf("synthetic staging of %s is not deterministic", rel)
			}
		}
		sum := sha256.Sum256(staged)
		localSums[rel] = hex.EncodeToString(sum[:])
	}

	if _, err := liveDep.RunBatch("hyperspectral", rels); err != nil {
		t.Fatal(err)
	}
	if _, err := wireDep.RunBatch("hyperspectral", rels); err != nil {
		t.Fatal(err)
	}

	// One transfer task each; their accounting and checksums must agree
	// with each other and with the locally computed digests.
	liveTasks, wireTasks := liveDep.Transfer.Tasks(), wireDep.Transfer.Tasks()
	if len(liveTasks) != 1 || len(wireTasks) != 1 {
		t.Fatalf("tasks live/wire = %d/%d, want 1/1", len(liveTasks), len(wireTasks))
	}
	lt, wt := liveTasks[0], wireTasks[0]
	if lt.ChunksTotal != wt.ChunksTotal || lt.ChunksMoved != wt.ChunksMoved || lt.ChunksSkipped != wt.ChunksSkipped {
		t.Errorf("chunk accounting differs: live %d/%d/%d, wire %d/%d/%d",
			lt.ChunksTotal, lt.ChunksMoved, lt.ChunksSkipped, wt.ChunksTotal, wt.ChunksMoved, wt.ChunksSkipped)
	}
	if lt.BytesMoved != wt.BytesMoved || lt.BytesCopied != wt.BytesCopied {
		t.Errorf("byte accounting differs: live %d/%d, wire %d/%d", lt.BytesMoved, lt.BytesCopied, wt.BytesMoved, wt.BytesCopied)
	}
	if !reflect.DeepEqual(lt.Checksums, wt.Checksums) {
		t.Errorf("checksum maps differ:\nlive: %v\nwire: %v", lt.Checksums, wt.Checksums)
	}
	for rel, want := range localSums {
		if lt.Checksums[rel] != want {
			t.Errorf("%s: reported checksum %s, want locally computed %s", rel, lt.Checksums[rel], want)
		}
	}

	// Landed bytes are identical across paths.
	for _, rel := range rels {
		liveBytes, err := os.ReadFile(filepath.Join(liveDep.Options.EagleRoot, rel))
		if err != nil {
			t.Fatal(err)
		}
		wireBytes, err := os.ReadFile(filepath.Join(daemonRoot, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(liveBytes, wireBytes) {
			t.Errorf("%s landed differently across paths", rel)
		}
	}

	// The catalogs carry identical records: same IDs, and per ID the
	// same text, fields, numbers, date, and payload. (Task timing fields
	// are the only cross-path difference by design, and they never reach
	// the catalog.)
	query := search.Query{Limit: nFiles * 2}
	liveHits, liveTotal, err := liveDep.Index.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	wireHits, wireTotal, err := wireDep.Index.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if liveTotal != nFiles || wireTotal != nFiles {
		t.Fatalf("catalog totals live/wire = %d/%d, want %d/%d", liveTotal, wireTotal, nFiles, nFiles)
	}
	wireByID := map[string]search.Entry{}
	for _, h := range wireHits {
		wireByID[h.Entry.ID] = h.Entry
	}
	for _, h := range liveHits {
		le := h.Entry
		we, ok := wireByID[le.ID]
		if !ok {
			t.Errorf("record %s in live catalog only", le.ID)
			continue
		}
		if le.Text != we.Text {
			t.Errorf("%s: text differs:\nlive: %s\nwire: %s", le.ID, le.Text, we.Text)
		}
		if !reflect.DeepEqual(le.Fields, we.Fields) {
			t.Errorf("%s: fields differ:\nlive: %v\nwire: %v", le.ID, le.Fields, we.Fields)
		}
		if !reflect.DeepEqual(le.Numbers, we.Numbers) {
			t.Errorf("%s: numbers differ:\nlive: %v\nwire: %v", le.ID, le.Numbers, we.Numbers)
		}
		if !le.Date.Equal(we.Date) {
			t.Errorf("%s: date differs: live %v, wire %v", le.ID, le.Date, we.Date)
		}
		if !bytes.Equal(le.Payload, we.Payload) {
			t.Errorf("%s: payload differs:\nlive: %.300s\nwire: %.300s", le.ID, le.Payload, we.Payload)
		}
	}
}
