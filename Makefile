GO ?= go

.PHONY: all build vet test race bench-smoke bench linkcheck ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile and execute every benchmark exactly once so perf-critical paths
# at least get exercised on every PR without burning CI minutes.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# Validate every relative link and anchor in the repository's Markdown
# (dangling DESIGN.md references have bitten us before).
linkcheck:
	$(GO) run ./tools/linkcheck

ci: build vet test bench-smoke linkcheck
