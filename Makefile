GO ?= go

.PHONY: all build vet test race bench-smoke bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile and execute every benchmark exactly once so perf-critical paths
# at least get exercised on every PR without burning CI minutes.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

ci: build vet test bench-smoke
