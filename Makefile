GO ?= go

.PHONY: all build vet test race race-fed chaos-smoke load-smoke bench-smoke bench bench-portal bench-portal-load bench-recovery bench-netprobe bench-wire fuzz-wire linkcheck ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The federation's concurrency-heavy packages under the race detector:
# heartbeat monitor, wire client/server resilience, fault injectors,
# the registry's health-driven placement, and the portal serving layer
# (epoch cache + SSE hub + admission under churn, obs instruments).
race-fed:
	$(GO) test -race ./internal/health/ ./internal/wire/ ./internal/netfault/ ./internal/facility/ ./internal/transfer/ ./internal/portal/ ./internal/obs/

# A short-mode pass of the chaos soak and the heartbeat detection gate
# (DESIGN.md §12): a scaled-down daemon federation under the seeded
# fault storm. The full-size soak runs with plain `go test .`.
chaos-smoke:
	$(GO) test -short -run 'TestChaosSoak|TestHeartbeatDetectsHungDaemonBeforeTimeout' -count 1 .

# The serving-layer load smoke (BENCHMARKS.md "Portal load test"): 1000
# real connections against the cached portal under ingest churn, gated
# on zero 5xx, non-zero cache hits and a bounded p99. Runs in CI.
load-smoke:
	$(GO) test -run TestPortalLoadSmoke -count 1 -v .

# The full recorded load run (BENCHMARKS.md "Portal load test"): 10k+
# connections split across a server child and a client process (each
# side needs its own fd budget), cached and uncached arms. CONNS=20000
# or DURATION=30s to go bigger.
CONNS ?= 10000
DURATION ?= 15s
bench-portal-load:
	$(GO) build -o bin/picoprobe-loadtest ./cmd/picoprobe-loadtest
	@echo "=== cached arm ==="
	bin/picoprobe-loadtest -spawn -conns $(CONNS) -duration $(DURATION) -warmup 5s
	@echo "=== uncached arm ==="
	bin/picoprobe-loadtest -spawn -conns $(CONNS) -duration $(DURATION) -warmup 5s -cache=false

# The catalog serving benchmarks (BENCHMARKS.md "Portal serving"): one
# execution each, with allocation counts. Raise -benchtime (e.g.
# BENCHFLAGS='-benchtime 2s -count 5') when recording benchstat pairs.
bench-portal:
	$(GO) test -run NONE -bench 'BenchmarkPortalQueryThroughput|BenchmarkSearchTopK' -benchtime 1x -benchmem $(BENCHFLAGS) .

# Crash-recovery cost (BENCHMARKS.md "Crash recovery"): WAL replay rate
# and time-to-first-query after a kill -9. Quote with -benchtime 5x.
bench-recovery:
	$(GO) test -run NONE -bench 'BenchmarkCrashRecovery' -benchtime 5x -benchmem $(BENCHFLAGS) .

# Link-quality probing cost and the adaptive-vs-fixed transfer pair
# (BENCHMARKS.md "Link quality"): per-sample probe overhead plus the
# bandwidth-ramp makespan comparison.
bench-netprobe:
	$(GO) test -run NONE -bench 'BenchmarkNetprobe' -benchtime 1x -benchmem $(BENCHFLAGS) ./internal/netprobe/
	$(GO) test -run NONE -bench 'BenchmarkAdaptiveTransfer' -benchtime 1x -benchmem $(BENCHFLAGS) .

# Wire data-plane smoke (BENCHMARKS.md "Wire transport"): localhost
# daemon throughput through the full framing/checksum/manifest path,
# and the reconnect-resume retry cost. Quote with -benchtime 10x.
bench-wire:
	$(GO) test -run NONE -bench 'BenchmarkWire' -benchtime 3x -benchmem $(BENCHFLAGS) ./internal/transfer/

# A short coverage-guided run of the wire codec fuzzer on top of the
# checked-in seed corpus (internal/wire/testdata/fuzz). FUZZTIME=30s to
# dig deeper locally.
FUZZTIME ?= 10s
fuzz-wire:
	$(GO) test -run NONE -fuzz FuzzCodec -fuzztime $(FUZZTIME) ./internal/wire/

# Compile and execute every benchmark exactly once so perf-critical paths
# (including the portal serving and netprobe pairs above) get exercised
# on every PR without burning CI minutes.
bench-smoke: bench-netprobe
	$(GO) test -run NONE -bench . -benchtime 1x ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# Validate every relative link and anchor in the repository's Markdown
# (dangling DESIGN.md references have bitten us before).
linkcheck:
	$(GO) run ./tools/linkcheck

ci: build vet test race-fed chaos-smoke load-smoke bench-smoke fuzz-wire linkcheck
