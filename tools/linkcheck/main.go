// Command linkcheck validates the repository's Markdown cross-references:
// every relative link must resolve to an existing file, and every anchor
// (in-file or cross-file) must match a heading in its target document.
// External (http/https/mailto) links are not fetched. It runs as part of
// `make ci` because dangling DESIGN.md/EXPERIMENTS.md references have
// already rotted once before PR 2 backfilled them.
//
// Usage:
//
//	go run ./tools/linkcheck [root]
//
// Exit status is non-zero when any link is broken; each problem is
// reported as file:line: message.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// skipDirs are never descended into.
var skipDirs = map[string]bool{
	".git":           true,
	".github":        false, // workflow docs may hold links worth checking
	"picoprobe-work": true,
	"testdata":       true,
}

// linkRe matches inline Markdown links and images: [text](target) with an
// optional title. Reference-style links are rare enough here to skip.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

type document struct {
	path    string
	anchors map[string]bool
	// links as (line number, raw target) pairs.
	links []linkRef
}

type linkRef struct {
	line   int
	target string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}

	// ordered is the fixed set of documents whose links are checked;
	// anchorDocs additionally caches on-demand parses of link targets
	// outside the walk (those are anchor sources only, never iterated).
	var ordered []*document
	anchorDocs := map[string]*document{}
	for _, f := range files {
		doc, err := parse(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		abs, _ := filepath.Abs(f)
		anchorDocs[abs] = doc
		ordered = append(ordered, doc)
	}

	broken := 0
	report := func(doc *document, l linkRef, msg string) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s (%s)\n", doc.path, l.line, msg, l.target)
		broken++
	}
	for _, doc := range ordered {
		for _, l := range doc.links {
			target := l.target
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				if !doc.anchors[strings.ToLower(strings.TrimPrefix(target, "#"))] {
					report(doc, l, "missing in-file anchor")
				}
				continue
			}
			file, anchor, _ := strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(doc.path), file)
			info, err := os.Stat(resolved)
			if err != nil {
				report(doc, l, "missing file")
				continue
			}
			if anchor == "" {
				continue
			}
			if info.IsDir() || !strings.EqualFold(filepath.Ext(resolved), ".md") {
				report(doc, l, "anchor into a non-Markdown target")
				continue
			}
			abs, _ := filepath.Abs(resolved)
			targetDoc, ok := anchorDocs[abs]
			if !ok {
				// A Markdown file outside the scanned tree; parse on demand.
				targetDoc, err = parse(resolved)
				if err != nil {
					report(doc, l, "unreadable target")
					continue
				}
				anchorDocs[abs] = targetDoc
			}
			if !targetDoc.anchors[strings.ToLower(anchor)] {
				report(doc, l, "missing anchor in "+file)
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) across %d Markdown file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d Markdown file(s) clean\n", len(files))
}

// parse extracts a document's heading anchors and outbound links, ignoring
// fenced code blocks.
func parse(path string) (*document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc := &document{path: path, anchors: map[string]bool{}}
	seen := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inFence := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(text); m != nil {
			slug := slugify(m[2])
			// GitHub disambiguates duplicate headings with -1, -2, ...
			if n := seen[slug]; n > 0 {
				doc.anchors[fmt.Sprintf("%s-%d", slug, n)] = true
			} else {
				doc.anchors[slug] = true
			}
			seen[slug]++
		}
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			doc.links = append(doc.links, linkRef{line: line, target: m[1]})
		}
	}
	return doc, sc.Err()
}

// slugify reproduces GitHub's heading-anchor algorithm closely enough for
// this repository: lowercase, backtick/asterisk markup stripped,
// punctuation removed, spaces to hyphens. Literal underscores are kept —
// GitHub preserves them in anchors (a `restage_bytes` heading anchors as
// #restage_bytes).
func slugify(heading string) string {
	h := strings.NewReplacer("`", "", "*", "").Replace(heading)
	var sb strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r == ' ', r == '-':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
