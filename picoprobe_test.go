package picoprobe

import (
	"path/filepath"
	"testing"
	"time"

	"picoprobe/internal/metadata"
	"picoprobe/internal/search"
	"picoprobe/internal/synth"
)

// TestPublicAPISimulation exercises the simulation entry points exactly as
// a downstream user would.
func TestPublicAPISimulation(t *testing.T) {
	cfg := HyperspectralExperiment()
	cfg.Duration = 10 * time.Minute
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Table1()
	if row.TotalRuns == 0 {
		t.Fatal("no runs")
	}
	if FormatTable1(row, PaperTable1Hyperspectral) == "" {
		t.Error("empty table")
	}
	if FormatStages("hs", res.Stages()) == "" {
		t.Error("empty stages")
	}
	if DefaultProfile().StreamCapBps <= 0 {
		t.Error("bad default profile")
	}
}

// TestPublicAPILivePipeline exercises the live entry points end to end:
// synthetic instrument -> EMD -> flow -> searchable record -> artifacts.
func TestPublicAPILivePipeline(t *testing.T) {
	instrument := t.TempDir()
	s, err := synth.GenerateHyperspectral(HyperspectralConfig{Height: 16, Width: 16, Channels: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	acq := &metadata.Acquisition{SampleName: "api-sample", Operator: "api", Collected: time.Now().UTC()}
	if err := s.WriteEMD(filepath.Join(instrument, "run.emdg"), synth.DefaultMicroscope(), acq); err != nil {
		t.Fatal(err)
	}

	dep, err := NewLiveDeployment(LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      t.TempDir(),
		OutDir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dep.RunFile("hyperspectral", "run.emdg")
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalActive() <= 0 {
		t.Error("no active time recorded")
	}
	if _, total, _ := dep.Index.Search(search.Query{Text: "api-sample"}); total != 1 {
		t.Errorf("search total = %d", total)
	}
}

// TestDirectAnalysisEntryPoints exercises the standalone analysis
// functions through the facade.
func TestDirectAnalysisEntryPoints(t *testing.T) {
	dir := t.TempDir()
	st := synth.GenerateSpatiotemporal(SpatiotemporalConfig{Frames: 4, Height: 32, Width: 32, Particles: 3, Seed: 2})
	acq := &metadata.Acquisition{SampleName: "direct", Operator: "api", Collected: time.Now().UTC()}
	path := filepath.Join(dir, "st.emdg")
	if err := st.WriteEMD(path, synth.DefaultMicroscope(), acq); err != nil {
		t.Fatal(err)
	}
	out, err := AnalyzeSpatiotemporal(path, t.TempDir(), DefaultDetectorParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Detections) != 4 {
		t.Errorf("detections = %v", out.Detections)
	}
}
