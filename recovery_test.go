package picoprobe

// Crash recovery, end to end (DESIGN.md §9): a real portal process is
// killed with SIGKILL mid-ingest-churn and a fresh process recovering
// from the same durable directory must serve exactly what the journal
// acknowledged — bit-identical /api/search responses against a control
// index that was never killed, and the prior campaign's run records
// under /flows. BenchmarkCrashRecovery measures the replay rate and the
// time-to-first-query after such a crash (BENCHMARKS.md "Crash
// recovery").

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"picoprobe/internal/durable"
	"picoprobe/internal/flows"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
	"picoprobe/internal/sim"
)

// recoveryChildEnv carries the durable directory to the helper process;
// set, it turns TestRecoveryChildProcess into the crash victim.
const recoveryChildEnv = "PICOPROBE_RECOVERY_CHILD"

// recoveryOp applies the i-th operation (1-based, one WAL record each)
// of the deterministic churn stream to a catalog. Parent and child share
// it: the child journals the stream until it is killed, the parent
// replays the same prefix into a control index.
func recoveryOp(i int, ingest func(search.Entry) error, del func(string) error) error {
	switch {
	case i%25 == 24:
		return del(fmt.Sprintf("rec-%06d", i-10))
	case i%10 == 9:
		return ingest(recoveryEntry(i-5, fmt.Sprintf("revised gold nanoparticle map %d", i)))
	default:
		return ingest(recoveryEntry(i, fmt.Sprintf("polyamide film acquisition %d high tension", i)))
	}
}

func recoveryEntry(i int, text string) search.Entry {
	return search.Entry{
		ID:   fmt.Sprintf("rec-%06d", i),
		Text: text,
		Fields: map[string]string{
			"kind": []string{"hyperspectral", "spatiotemporal"}[i%2],
		},
		Numbers: map[string]float64{"beam_energy_kev": float64(60 + i%40)},
		Date:    time.Date(2023, time.March, 1+i%27, 12, 0, 0, 0, time.UTC),
	}
}

// recoveryRun is the deterministic run record the child journals after
// every 25th catalog op.
func recoveryRun(j int) flows.RunRecord {
	return flows.RunRecord{
		RunID:  fmt.Sprintf("run-%06d", j),
		Flow:   "hyperspectral",
		Status: flows.StateSucceeded,
		Input:  map[string]any{"file": fmt.Sprintf("hs-%d.emdg", j)},
	}
}

// TestRecoveryChildProcess is not a test: re-executed by
// TestKillNineRecovery with the env var set, it churns the durable
// catalog and run log until the parent kills it with SIGKILL.
func TestRecoveryChildProcess(t *testing.T) {
	dir := os.Getenv(recoveryChildEnv)
	if dir == "" {
		t.Skip("helper process for TestKillNineRecovery")
	}
	cat, _, err := search.OpenDurable(filepath.Join(dir, "catalog"), search.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runlog, _, _, err := flows.OpenRunLog(filepath.Join(dir, "runs"), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1_000_000; i++ {
		err := recoveryOp(i, cat.Ingest, func(id string) error { _, derr := cat.Delete(id); return derr })
		if err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			if err := runlog.Append(recoveryRun(i / 25)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// walBytes sums the sizes of the WAL segments under dir.
func walBytes(dir string) int64 {
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	var total int64
	for _, s := range segs {
		if st, err := os.Stat(s); err == nil {
			total += st.Size()
		}
	}
	return total
}

func TestKillNineRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-specific")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRecoveryChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), recoveryChildEnv+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the churn run until a healthy amount of journal is on disk,
	// then kill -9 mid-write.
	catDir := filepath.Join(dir, "catalog")
	deadline := time.Now().Add(30 * time.Second)
	for walBytes(catDir) < 96<<10 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never produced enough journal; output:\n%s", childOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Recover the catalog. Everything the child's journal acknowledged
	// (fsync-per-append: acked == durable) must come back; a torn final
	// record may be truncated away.
	recovered, stats, err := search.OpenDurable(catDir, search.DurableOptions{})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer recovered.Close()
	lastLSN := int(stats.LastLSN)
	if lastLSN < 100 {
		t.Fatalf("only %d ops journaled before the kill", lastLSN)
	}
	t.Logf("recovered %d catalog ops (torn tail: %v)", lastLSN, stats.TornTail)

	// The control: a never-killed in-memory index that applied exactly
	// the acknowledged prefix, sequentially.
	control := search.NewIndex()
	for i := 1; i <= lastLSN; i++ {
		err := recoveryOp(i, control.Ingest, func(id string) error { control.Delete(id); return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if recovered.Count() != control.Count() {
		t.Fatalf("recovered %d records, control has %d", recovered.Count(), control.Count())
	}

	// Run records: every recovered record must be exactly what the
	// generator journaled for that run.
	runlog, recs, _, err := flows.OpenRunLog(filepath.Join(dir, "runs"), durable.Options{})
	if err != nil {
		t.Fatalf("run log recovery after kill -9: %v", err)
	}
	defer runlog.Close()
	if len(recs) == 0 {
		t.Fatal("no run records recovered")
	}
	for _, r := range recs {
		var j int
		if _, err := fmt.Sscanf(r.RunID, "run-%06d", &j); err != nil {
			t.Fatalf("unexpected run ID %q", r.RunID)
		}
		want := recoveryRun(j)
		if r.Flow != want.Flow || r.Status != want.Status || r.Input["file"] != want.Input["file"] {
			t.Fatalf("recovered run %s = %+v, want %+v", r.RunID, r, want)
		}
	}

	// Serve both indexes through the real portal and compare the API
	// responses byte for byte — identical hits, order AND scores.
	engine := flows.NewEngine(sim.NewLiveRuntime(1), flows.Options{})
	engine.Restore(recs)
	recoveredSrv, err := portal.NewServer(portal.Config{Index: recovered.Index(), Flows: engine})
	if err != nil {
		t.Fatal(err)
	}
	controlSrv, err := portal.NewServer(portal.Config{Index: control})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/api/search?q=polyamide+film",
		"/api/search?q=gold+nanoparticle+map&limit=50",
		"/api/search?q=high+tension&kind=hyperspectral",
		"/api/search", // match-all, recency ordered
	} {
		got := fetch(t, recoveredSrv, path)
		want := fetch(t, controlSrv, path)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: recovered response differs from never-killed control\nrecovered: %.200s\ncontrol:   %.200s",
				path, got, want)
		}
	}

	// And the restarted portal lists the prior campaign's runs.
	flowsPage := string(fetch(t, recoveredSrv, "/flows"))
	if !strings.Contains(flowsPage, recs[0].RunID) {
		t.Errorf("/flows does not list recovered run %s", recs[0].RunID)
	}
}

func fetch(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("%s: status %d", path, rec.Code)
	}
	return rec.Body.Bytes()
}

// BenchmarkCrashRecovery measures what a kill -9 costs at restart: a
// journal of catalog churn (no snapshot — the worst case) is replayed
// from disk, and the custom metrics report the replay rate and the time
// until the first query can be served. BENCHMARKS.md "Crash recovery"
// records the numbers.
func BenchmarkCrashRecovery(b *testing.B) {
	dir := b.TempDir()
	const ops = 5000
	d, _, err := search.OpenDurable(dir, search.DurableOptions{
		Durable: durable.Options{Sync: durable.SyncTimer}, // prep speed; replay cost is identical
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= ops; i++ {
		err := recoveryOp(i, d.Ingest, func(id string) error { _, derr := d.Delete(id); return derr })
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	var replayed, replayNanos, firstQueryNanos int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		re, stats, err := search.OpenDurable(dir, search.DurableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		replayNanos += int64(time.Since(start))
		replayed += int64(stats.Records)
		if _, _, err := re.Index().Search(search.Query{Text: "polyamide film", Limit: 20}); err != nil {
			b.Fatal(err)
		}
		firstQueryNanos += int64(time.Since(start))
		re.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(replayed)/(float64(replayNanos)/1e9), "records/s")
	b.ReportMetric(float64(firstQueryNanos)/float64(b.N)/1e6, "ms-to-first-query")
}
