package picoprobe

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"picoprobe/internal/loadgen"
	"picoprobe/internal/obs"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
)

// TestPortalLoadSmoke is the in-process slice of the load harness that
// runs on every CI pass (`make load-smoke`): the full serving layer —
// epoch cache, admission, metrics — behind a real TCP listener, driven
// by 1000 concurrent persistent connections while a writer churns the
// index. Gates: every connection establishes, zero transport errors,
// zero 5xx, a working cache (non-zero hits), and a bounded p99. The
// 10k-connection recorded run lives in `make bench-portal-load`
// (BENCHMARKS.md "Portal load test"); this test keeps the machinery
// honest between recordings.
func TestPortalLoadSmoke(t *testing.T) {
	conns, duration, warmup := 1000, 3*time.Second, time.Second
	if testing.Short() {
		conns, duration, warmup = 200, time.Second, 500*time.Millisecond
	}

	entries := loadgen.Campaign(20_000)
	ix := search.NewIndex()
	if err := ix.IngestBatch(entries); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv, err := portal.NewServer(portal.Config{
		Index:   ix,
		Cache:   &portal.CacheConfig{},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	// Ingest churn at ~50/s so epochs advance mid-run, exercising the
	// generation swap and the bypass paths under load.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		rng := rand.New(rand.NewSource(3))
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := ix.Ingest(entries[rng.Intn(len(entries))]); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:       ln.Addr().String(),
		Conns:      conns,
		Duration:   duration,
		Warmup:     warmup,
		Targets:    loadgen.DefaultTargets(),
		Revalidate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load smoke (%d CPU):\n%s", runtime.NumCPU(), res.Format())

	if res.Conns < conns {
		t.Errorf("only %d of %d connections established", res.Conns, conns)
	}
	if res.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if res.Errors != 0 {
		t.Errorf("%d transport errors", res.Errors)
	}
	if res.StatusOther != 0 || res.Status503 != 0 {
		t.Errorf("5xx/unexpected responses under smoke load: %+v", res)
	}
	if res.Status429 != 0 {
		t.Errorf("429s with no rate limit configured: %d", res.Status429)
	}
	if res.CacheHits == 0 {
		t.Error("epoch cache produced zero hits under a repeating mix")
	}
	// Generous single-core CI bound: collapse shows up as multi-second
	// p99s, healthy cached serving stays well under this.
	if p99 := res.P99(); p99 > 2*time.Second {
		t.Errorf("p99 %v exceeds the 2s smoke bound", p99)
	}
}
