// Package picoprobe is the public API of the PicoProbe data-flow library —
// a from-scratch Go reproduction of "Linking the Dynamic PicoProbe
// Analytical Electron-Optical Beam Line / Microscope to Supercomputers"
// (SC 2023).
//
// The library provides, end to end, the architecture the paper describes:
// a watcher that triggers flows when the instrument writes EMD files,
// coalescing bursts into multi-file batches under a bytes-in-flight
// budget; a managed transfer service that moves them to a storage
// endpoint as a chunked, resumable, multi-stream pipeline (per-chunk
// SHA-256, manifest-based resume, O(remaining chunks) retries); a
// federated compute service that runs the fused analysis+metadata
// functions on batch-scheduled nodes; a search index and portal that make
// the results FAIR; and a flow-orchestration engine that drives the
// stages with the polling-backoff client whose overhead the paper
// measures.
//
// Flows are typed DAGs: states declare explicit After dependencies,
// independent states run concurrently with fan-in of results, and
// params/results move through generics-based typed providers instead of
// hand-cast maps. The paper's straight-line flows run unchanged through
// the v1 ordered-list shim (FlowDefinition.Linear), while DAG shapes —
// like the fan-out example's Transfer → {Analysis ∥ Thumbnail} →
// Publication — overlap their states on the facility. Completion
// detection is batched engine-wide: one poll sweep services every due
// action across all runs per tick, so thousands of concurrent runs cost
// wake-ups proportional to distinct poll instants, not runs.
//
// Two execution modes share all orchestration code:
//
//   - Live mode (NewLiveDeployment) moves real files, runs the real
//     analysis code (intensity maps, spectra, nanoYOLO detection,
//     MJPEG-AVI conversion) and serves a real portal.
//   - Simulation mode (RunExperiment) reproduces the paper's 1-hour
//     facility evaluations in milliseconds on a deterministic
//     discrete-event kernel with a calibrated deployment profile,
//     regenerating Table 1 and Fig 4.
//
// The simulated deployment is federated (RunFederatedExperiment): N
// facilities, each with its own batch-scheduled node pool and network
// path, share the flow load through queue-wait-aware least-estimated-
// completion-time placement with sticky runs, outage/budget failover and
// re-stage accounting. RunExperiment is the N=1 degenerate case, so the
// paper reproductions run through the identical placement machinery.
//
// The live analysis functions run on a streaming zero-copy data plane
// sized for detector-rate ingest: EMD datasets are consumed one stored
// chunk at a time (emd.Dataset.Chunks / ReadFramesInto decode into pooled
// buffers), the hyperspectral reductions are fused into a single
// chunk-parallel pass, spatiotemporal inference is a bounded worker
// pipeline (read → cast → detect → annotate → JPEG-encode) with
// order-preserving output, and the AVI writer flushes frames incrementally
// to seekable destinations — so memory stays bounded by chunk size, not
// file size, and no per-frame hot loop allocates. See BENCHMARKS.md for
// how these paths are measured against the paper's bottleneck analysis.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package picoprobe

import (
	"picoprobe/internal/core"
	"picoprobe/internal/detect"
	"picoprobe/internal/flows"
	"picoprobe/internal/metadata"
	"picoprobe/internal/synth"
)

// Deployment profile and experiment harness (simulation mode).
type (
	// Profile holds the facility calibration constants (network rates,
	// PBS delays, analysis cost models, orchestration overheads).
	Profile = core.Profile
	// ExperimentConfig parameterizes one simulated 1-hour evaluation.
	ExperimentConfig = core.ExperimentConfig
	// ExperimentResult carries the run records and aggregations.
	ExperimentResult = core.ExperimentResult
	// Table1Row is one column of the paper's Table 1.
	Table1Row = core.Table1Row
	// StageRow is one bar group of the paper's Fig 4.
	StageRow = core.StageRow
)

// Federation (multi-facility placement).
type (
	// FacilitySpec describes one simulated facility of a federation.
	FacilitySpec = core.FacilitySpec
	// FederatedConfig parameterizes a federated evaluation run.
	FederatedConfig = core.FederatedConfig
	// FederatedResult carries run records plus placement telemetry.
	FederatedResult = core.FederatedResult
)

// Live deployment (real files, real analysis).
type (
	// LiveOptions configures an in-process live deployment.
	LiveOptions = core.LiveOptions
	// LiveDeployment is a fully wired live pipeline.
	LiveDeployment = core.LiveDeployment
	// AnalysisOutput is the product set of one analysis invocation.
	AnalysisOutput = core.AnalysisOutput
)

// Synthetic instrument and detector.
type (
	// HyperspectralConfig parameterizes synthetic hyperspectral cubes.
	HyperspectralConfig = synth.HyperspectralConfig
	// SpatiotemporalConfig parameterizes synthetic nanoparticle series.
	SpatiotemporalConfig = synth.SpatiotemporalConfig
	// DetectorParams are nanoYOLO's tunables.
	DetectorParams = detect.Params
	// Experiment is the DataCite-flavoured metadata record.
	Experiment = metadata.Experiment
)

// Flow orchestration (the typed DAG API).
type (
	// FlowDefinition is a named DAG of action states; definitions without
	// dependency declarations execute as v1 ordered lists.
	FlowDefinition = flows.Definition
	// FlowState is one node of a flow definition, with per-state policy,
	// timeout and retry overrides.
	FlowState = flows.StateDef
	// RunRecord is the full timing account of one flow run.
	RunRecord = flows.RunRecord
	// StateRecord is the engine's timing account of one executed state
	// (the paper's Fig 4 active-vs-overhead decomposition inputs).
	StateRecord = flows.StateRecord
	// FlowPollStats is the engine's completion-detection effort.
	FlowPollStats = flows.PollStats
)

// Backoff policies for the flows engine (the paper's exponential default
// plus the ablation alternatives).
type (
	// ExponentialBackoff is the paper's deployed policy.
	ExponentialBackoff = flows.Exponential
	// ConstantBackoff polls at a fixed interval.
	ConstantBackoff = flows.Constant
	// LinearBackoff grows the interval linearly.
	LinearBackoff = flows.Linear
	// PushPolicy idealizes event-driven completion notification.
	PushPolicy = flows.Push
)

// DefaultProfile returns the paper-calibrated deployment profile.
func DefaultProfile() Profile { return core.DefaultProfile() }

// HyperspectralExperiment returns the paper's hyperspectral Table 1
// configuration (30 s start period, 91 MB files, 1 hour).
func HyperspectralExperiment() ExperimentConfig { return core.HyperspectralExperiment() }

// SpatiotemporalExperiment returns the paper's spatiotemporal Table 1
// configuration (120 s start period, 1200 MB files, 1 hour).
func SpatiotemporalExperiment() ExperimentConfig { return core.SpatiotemporalExperiment() }

// RunExperiment executes one simulated evaluation run; a full virtual hour
// completes in milliseconds and is fully deterministic.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return core.RunExperiment(cfg)
}

// RunFederatedExperiment executes a simulated evaluation across N
// facilities with queue-wait-aware placement and failover; N=1 matches
// RunExperiment bit for bit.
func RunFederatedExperiment(cfg FederatedConfig) (*FederatedResult, error) {
	return core.RunFederatedExperiment(cfg)
}

// FederatedScenario returns the showcase federated configuration: three
// asymmetric facilities with a mid-experiment outage of the primary.
func FederatedScenario() FederatedConfig { return core.FederatedScenario() }

// DefaultFederationSpecs returns the first n stock simulated facilities.
func DefaultFederationSpecs(n int) []FacilitySpec { return core.DefaultFederationSpecs(n) }

// FederationContentionScenario returns the queue-wait benchmark workload
// (pin=true gives the pinned single-backend baseline over the same
// facilities).
func FederationContentionScenario(pin bool) FederatedConfig {
	return core.FederationContentionScenario(pin)
}

// FormatFacilities renders a federated result's per-facility summary.
func FormatFacilities(res *FederatedResult) string { return core.FormatFacilities(res) }

// FormatTable1 renders experiment rows the way the paper's Table 1 does.
func FormatTable1(rows ...Table1Row) string { return core.FormatTable1(rows...) }

// FormatStages renders a per-step decomposition like the paper's Fig 4.
func FormatStages(label string, stages []StageRow) string { return core.FormatStages(label, stages) }

// PaperTable1Hyperspectral and PaperTable1Spatiotemporal are the published
// Table 1 values, for side-by-side comparison.
var (
	PaperTable1Hyperspectral  = core.PaperTable1Hyperspectral
	PaperTable1Spatiotemporal = core.PaperTable1Spatiotemporal
)

// NewLiveDeployment wires a live in-process deployment against local
// directories.
func NewLiveDeployment(opts LiveOptions) (*LiveDeployment, error) {
	return core.NewLiveDeployment(opts)
}

// AnalyzeHyperspectral runs the fused hyperspectral analysis+metadata
// function on an EMD file, writing Fig 2's artifacts into outDir.
func AnalyzeHyperspectral(emdPath, outDir string) (*AnalysisOutput, error) {
	return core.AnalyzeHyperspectral(emdPath, outDir)
}

// AnalyzeSpatiotemporal runs the fused spatiotemporal inference function
// (video conversion + nanoYOLO detection + annotation) on an EMD file.
func AnalyzeSpatiotemporal(emdPath, outDir string, params DetectorParams) (*AnalysisOutput, error) {
	return core.AnalyzeSpatiotemporal(emdPath, outDir, params)
}

// DefaultDetectorParams returns nanoYOLO's uncalibrated defaults.
func DefaultDetectorParams() DetectorParams { return detect.DefaultParams() }
