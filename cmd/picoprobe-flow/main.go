// Command picoprobe-flow runs one live end-to-end data flow on a local EMD
// file: transfer to the storage root, fused analysis on the landed copy,
// publication to the search index. It prints the per-stage timing record
// and the produced artifacts.
//
// Usage:
//
//	picoprobe-flow -kind hyperspectral -file sample.emdg [-workdir ./picoprobe-work]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"picoprobe/internal/core"
)

func main() {
	kind := flag.String("kind", "hyperspectral", "hyperspectral or spatiotemporal")
	file := flag.String("file", "", "EMD file to process (required)")
	workdir := flag.String("workdir", "picoprobe-work", "working directory (instrument/eagle/artifact roots)")
	flag.Parse()
	if *file == "" {
		log.Fatal("-file is required (generate one with picoprobe-datagen)")
	}

	instrument := filepath.Join(*workdir, "instrument")
	eagle := filepath.Join(*workdir, "eagle")
	outDir := filepath.Join(*workdir, "artifacts")
	dep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      eagle,
		OutDir:         outDir,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stage the file into the instrument's transfer directory, as the
	// acquisition software would.
	rel := filepath.Base(*file)
	if err := copyFile(*file, filepath.Join(instrument, rel)); err != nil {
		log.Fatal(err)
	}

	rec, err := dep.RunFile(*kind, rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %s (%s) %s in %v\n", rec.RunID, rec.Flow, rec.Status, rec.Runtime().Round(1e6))
	for _, st := range rec.States {
		fmt.Printf("  %-12s action=%s active=%v overhead=%v polls=%d\n",
			st.Name, st.ActionID, st.Active().Round(1e6), st.Overhead().Round(1e6), st.Polls)
	}
	fmt.Printf("indexed records: %d\n", dep.Index.Count())
	fmt.Printf("artifacts under %s:\n", outDir)
	filepath.Walk(outDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			fmt.Printf("  %s (%d bytes)\n", path, info.Size())
		}
		return nil
	})
}

func copyFile(src, dst string) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
