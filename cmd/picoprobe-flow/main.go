// Command picoprobe-flow runs one live end-to-end data flow on a local EMD
// file: transfer to the storage root, analysis on the landed copy,
// publication to the search index. With -flow fanout the analysis and a
// thumbnail render run concurrently after the transfer (the DAG flow).
// It prints the executed DAG with per-state timings and the produced
// artifacts.
//
// With -facility the transfer and compute states carry an explicit
// facility constraint (flows.StateDef.Facility): federation-aware
// providers honor it, and the single-facility live deployment validates
// it against its one facility.
//
// Usage:
//
//	picoprobe-flow -kind hyperspectral -file sample.emdg [-flow fanout]
//	    [-facility alcf-eagle] [-workdir ./picoprobe-work]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"picoprobe/internal/core"
	"picoprobe/internal/flows"
)

func main() {
	kind := flag.String("kind", "hyperspectral", "hyperspectral or spatiotemporal")
	file := flag.String("file", "", "EMD file to process (required)")
	flowShape := flag.String("flow", "linear", "flow shape: linear (Transfer→Analysis→Publication) or fanout (Transfer→{Analysis∥Thumbnail}→Publication)")
	facilityID := flag.String("facility", "", "facility constraint for the transfer/compute states (live deployments have one facility: "+core.EndpointEagle+")")
	workdir := flag.String("workdir", "picoprobe-work", "working directory (instrument/eagle/artifact roots)")
	flag.Parse()
	if *file == "" {
		log.Fatal("-file is required (generate one with picoprobe-datagen)")
	}

	instrument := filepath.Join(*workdir, "instrument")
	eagle := filepath.Join(*workdir, "eagle")
	outDir := filepath.Join(*workdir, "artifacts")
	dep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      eagle,
		OutDir:         outDir,
	})
	if err != nil {
		log.Fatal(err)
	}

	var def flows.Definition
	switch *flowShape {
	case "linear":
		def = dep.LiveDefinition(*kind)
	case "fanout":
		def = dep.FanOutDefinition(*kind)
	default:
		log.Fatalf("unknown -flow %q (want linear or fanout)", *flowShape)
	}
	if *facilityID != "" {
		if *facilityID != core.EndpointEagle {
			log.Fatalf("unknown facility %q (this live deployment has one facility: %s)", *facilityID, core.EndpointEagle)
		}
		for i := range def.States {
			if def.States[i].Provider != "search" {
				def.States[i].Facility = *facilityID
			}
		}
		fmt.Printf("placement: constrained to facility %s\n", *facilityID)
	}

	// Stage the file into the instrument's transfer directory, as the
	// acquisition software would.
	rel := filepath.Base(*file)
	if err := copyFile(*file, filepath.Join(instrument, rel)); err != nil {
		log.Fatal(err)
	}

	rec, err := dep.RunDefinition(def, rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %s (%s) %s in %v\n", rec.RunID, rec.Flow, rec.Status, rec.Runtime().Round(1e6))
	for _, st := range rec.States {
		after := "-"
		if len(st.After) > 0 {
			after = strings.Join(st.After, ",")
		}
		fmt.Printf("  %-12s after=%-20s action=%s active=%v overhead=%v polls=%d\n",
			st.Name, after, st.ActionID, st.Active().Round(1e6), st.Overhead().Round(1e6), st.Polls)
	}
	stats := dep.Engine.PollStats()
	fmt.Printf("completion detection: %d wakeups, %d sweeps, %d status calls\n",
		stats.Wakeups, stats.Sweeps, stats.StatusCalls)
	fmt.Printf("indexed records: %d\n", dep.Index.Count())
	fmt.Printf("artifacts under %s:\n", outDir)
	filepath.Walk(outDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			fmt.Printf("  %s (%d bytes)\n", path, info.Size())
		}
		return nil
	})
}

func copyFile(src, dst string) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
