// Command picoprobe-watch is the instrument-side trigger application: it
// watches a transfer directory (with settle detection and a restart-safe
// checkpoint), coalesces settled files into multi-file batches under a
// bytes-in-flight budget, and starts one live batch flow per batch — the
// paper's watchdog-based application, wired to the in-process deployment
// over the chunked resumable ingest data plane.
//
// Usage:
//
//	picoprobe-watch -dir ./instrument -kind hyperspectral [-workdir ./picoprobe-work]
//	               [-batch-files 8] [-batch-bytes N] [-linger 500ms] [-inflight N]
//	               [-chunk 64MB] [-streams 4] [-count 0]
//
// Batching: settled files arriving within -linger of each other coalesce
// into one flow (at most -batch-files files / -batch-bytes bytes per
// batch), and new batches are withheld while more than -inflight bytes
// are still being processed. Transfers move in -chunk-sized chunks over
// -streams concurrent streams with manifest-based resume; -chunk 0
// restores whole-file single-stream framing. With -count N the command
// exits after N files (useful for scripted demos); 0 means run until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	"picoprobe/internal/core"
	"picoprobe/internal/watcher"
)

func main() {
	dir := flag.String("dir", "", "directory to watch (required)")
	kind := flag.String("kind", "hyperspectral", "hyperspectral or spatiotemporal")
	workdir := flag.String("workdir", "picoprobe-work", "working directory for eagle/artifact roots")
	pattern := flag.String("pattern", "*.emdg", "file glob to react to")
	count := flag.Int("count", 0, "exit after this many files (0 = forever)")
	batchFiles := flag.Int("batch-files", 8, "max files coalesced into one batch flow")
	batchBytes := flag.Int64("batch-bytes", 2<<30, "max bytes per batch (0 = uncapped)")
	linger := flag.Duration("linger", 500*time.Millisecond, "quiet period before a below-threshold batch flushes")
	inflight := flag.Int64("inflight", 4<<30, "bytes-in-flight backpressure budget (0 = unlimited)")
	chunk := flag.Int64("chunk", 64<<20, "transfer chunk size in bytes (0 = whole-file framing)")
	streams := flag.Int("streams", 4, "concurrent transfer streams per task")
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	dep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot:     *dir,
		EagleRoot:          filepath.Join(*workdir, "eagle"),
		OutDir:             filepath.Join(*workdir, "artifacts"),
		TransferChunkBytes: *chunk,
		TransferStreams:    *streams,
	})
	if err != nil {
		log.Fatal(err)
	}

	w, err := watcher.New(*dir, watcher.Options{
		Pattern:        *pattern,
		CheckpointPath: filepath.Join(*workdir, "watch-checkpoint.json"),
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	batcher := watcher.NewBatcher(w.Events(), watcher.BatchOptions{
		MaxBatchFiles: *batchFiles,
		MaxBatchBytes: *batchBytes,
		Linger:        *linger,
		BudgetBytes:   *inflight,
	})

	fmt.Printf("watching %s for %s files (checkpointed; batches of ≤%d files, %d-byte chunks × %d streams)\n",
		*dir, *pattern, *batchFiles, *chunk, *streams)
	ran := 0
	for batch := range batcher.Batches() {
		rels := make([]string, 0, len(batch.Files))
		for _, ev := range batch.Files {
			rel, err := filepath.Rel(*dir, ev.Path)
			if err != nil {
				log.Printf("skipping %s: %v", ev.Path, err)
				continue
			}
			rels = append(rels, rel)
		}
		if len(rels) == 0 {
			batcher.Done(batch)
			continue
		}
		fmt.Printf("batch #%d: %d file(s), %d bytes (%s) — starting %s batch flow\n",
			batch.Seq, len(rels), batch.Bytes, strings.Join(rels, ", "), *kind)
		rec, err := dep.RunBatch(*kind, rels)
		batcher.Done(batch)
		if err != nil {
			log.Printf("flow failed: %v", err)
			continue
		}
		fmt.Printf("  %s %s in %v; %d records indexed\n",
			rec.RunID, rec.Status, rec.Runtime().Round(1e6), dep.Index.Count())
		ran += len(rels)
		if *count > 0 && ran >= *count {
			return
		}
	}
}
