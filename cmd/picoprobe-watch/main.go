// Command picoprobe-watch is the instrument-side trigger application: it
// watches a transfer directory (with settle detection and a restart-safe
// checkpoint) and starts a live flow for every new EMD file — the paper's
// watchdog-based application, wired to the in-process deployment.
//
// Usage:
//
//	picoprobe-watch -dir ./instrument -kind hyperspectral [-workdir ./picoprobe-work] [-count 0]
//
// With -count N the command exits after N flows (useful for scripted
// demos); 0 means run until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"picoprobe/internal/core"
	"picoprobe/internal/watcher"
)

func main() {
	dir := flag.String("dir", "", "directory to watch (required)")
	kind := flag.String("kind", "hyperspectral", "hyperspectral or spatiotemporal")
	workdir := flag.String("workdir", "picoprobe-work", "working directory for eagle/artifact roots")
	pattern := flag.String("pattern", "*.emdg", "file glob to react to")
	count := flag.Int("count", 0, "exit after this many flows (0 = forever)")
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	dep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot: *dir,
		EagleRoot:      filepath.Join(*workdir, "eagle"),
		OutDir:         filepath.Join(*workdir, "artifacts"),
	})
	if err != nil {
		log.Fatal(err)
	}

	w, err := watcher.New(*dir, watcher.Options{
		Pattern:        *pattern,
		CheckpointPath: filepath.Join(*workdir, "watch-checkpoint.json"),
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	defer w.Stop()

	fmt.Printf("watching %s for %s files (checkpointed; restart-safe)\n", *dir, *pattern)
	ran := 0
	for ev := range w.Events() {
		rel, err := filepath.Rel(*dir, ev.Path)
		if err != nil {
			log.Printf("skipping %s: %v", ev.Path, err)
			continue
		}
		fmt.Printf("new file %s (%d bytes) — starting %s flow\n", rel, ev.Size, *kind)
		rec, err := dep.RunFile(*kind, rel)
		if err != nil {
			log.Printf("flow failed: %v", err)
			continue
		}
		fmt.Printf("  %s %s in %v; %d records indexed\n",
			rec.RunID, rec.Status, rec.Runtime().Round(1e6), dep.Index.Count())
		ran++
		if *count > 0 && ran >= *count {
			return
		}
	}
}
