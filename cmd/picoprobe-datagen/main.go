// Command picoprobe-datagen writes synthetic Dynamic PicoProbe
// acquisitions as EMD containers: hyperspectral cubes (polyamide film with
// embedded heavy metals) or spatiotemporal gold-nanoparticle series.
//
// Usage:
//
//	picoprobe-datagen -kind hyperspectral -out sample.emdg [-size 64] [-channels 256]
//	picoprobe-datagen -kind spatiotemporal -out series.emdg [-frames 60] [-size 128] [-particles 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"picoprobe/internal/metadata"
	"picoprobe/internal/synth"
)

func main() {
	kind := flag.String("kind", "hyperspectral", "hyperspectral or spatiotemporal")
	out := flag.String("out", "sample.emdg", "output EMD path")
	size := flag.Int("size", 64, "image height and width in pixels")
	channels := flag.Int("channels", 256, "spectral channels (hyperspectral)")
	frames := flag.Int("frames", 60, "time steps (spatiotemporal)")
	particles := flag.Int("particles", 8, "nanoparticle count (spatiotemporal)")
	seed := flag.Int64("seed", 1, "generator seed")
	sample := flag.String("sample", "synthetic-sample-001", "sample name recorded in metadata")
	operator := flag.String("operator", "datagen", "operator recorded in metadata")
	flag.Parse()

	acq := &metadata.Acquisition{
		SampleName: *sample,
		Operator:   *operator,
		Collected:  time.Now().UTC(),
	}
	mic := synth.DefaultMicroscope()

	switch *kind {
	case "hyperspectral":
		s, err := synth.GenerateHyperspectral(synth.HyperspectralConfig{
			Height: *size, Width: *size, Channels: *channels, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.WriteEMD(*out, mic, acq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: hyperspectral cube %v, elements %v\n", *out, s.Cube.Shape(), s.Elements)
	case "spatiotemporal":
		s := synth.GenerateSpatiotemporal(synth.SpatiotemporalConfig{
			Frames: *frames, Height: *size, Width: *size, Particles: *particles, Seed: *seed,
		})
		if err := s.WriteEMD(*out, mic, acq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: spatiotemporal series %v, %d particles with ground truth\n",
			*out, s.Series.Shape(), *particles)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}
