// Command picoprobe-experiment regenerates the paper's evaluation (Table 1
// and the Fig 4 stage decomposition) on the simulated facility, printing
// measured values side by side with the published ones.
//
// Usage:
//
//	picoprobe-experiment [-kind both|hyperspectral|spatiotemporal]
//	    [-duration 1h] [-policy exponential|constant|linear|push]
//	    [-split] [-noreuse] [-detail]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"picoprobe/internal/core"
	"picoprobe/internal/flows"
)

func main() {
	kind := flag.String("kind", "both", "hyperspectral, spatiotemporal or both")
	duration := flag.Duration("duration", time.Hour, "experiment window")
	policy := flag.String("policy", "exponential", "polling policy: exponential, constant, linear or push")
	split := flag.Bool("split", false, "run metadata extraction and image processing as separate compute states (ablation)")
	noreuse := flag.Bool("noreuse", false, "release compute nodes after every task (ablation)")
	detail := flag.Bool("detail", false, "print the per-stage Fig 4 decomposition")
	flag.Parse()

	var pol flows.Policy
	switch *policy {
	case "exponential":
		pol = flows.DefaultExponential()
	case "constant":
		pol = flows.Constant{Interval: time.Second}
	case "linear":
		pol = flows.Linear{Step: time.Second, Cap: time.Minute}
	case "push":
		pol = flows.Push{Latency: 100 * time.Millisecond}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	run := func(cfg core.ExperimentConfig) *core.ExperimentResult {
		cfg.Duration = *duration
		cfg.Policy = pol
		cfg.SplitCompute = *split
		cfg.DisableNodeReuse = *noreuse
		res, err := core.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	var rows []core.Table1Row
	var details []string
	if *kind == "both" || *kind == "hyperspectral" {
		res := run(core.HyperspectralExperiment())
		rows = append(rows, res.Table1(), core.PaperTable1Hyperspectral)
		details = append(details, core.FormatStages("hyperspectral", res.Stages()))
	}
	if *kind == "both" || *kind == "spatiotemporal" {
		res := run(core.SpatiotemporalExperiment())
		rows = append(rows, res.Table1(), core.PaperTable1Spatiotemporal)
		details = append(details, core.FormatStages("spatiotemporal", res.Stages()))
	}
	if len(rows) == 0 {
		log.Fatalf("unknown kind %q", *kind)
	}

	fmt.Printf("Simulated %v evaluation (policy=%s split=%v noreuse=%v)\n\n", *duration, *policy, *split, *noreuse)
	fmt.Println(core.FormatTable1(rows...))
	if *detail {
		for _, d := range details {
			fmt.Println()
			fmt.Println(d)
		}
	}
	os.Exit(0)
}
