// Command picoprobe-experiment regenerates the paper's evaluation (Table 1
// and the Fig 4 stage decomposition) on the simulated facility, printing
// measured values side by side with the published ones. With -facilities
// N > 1 it runs the federated evaluation instead: flows are placed across
// N facilities by least estimated completion time (queue-wait aware),
// with sticky placement and automatic failover; -outage takes the primary
// facility down mid-experiment, -pin restores the single-implicit-backend
// baseline over the same facility set, and -budget bounds the queue wait
// a placed run tolerates before failing over.
//
// Usage:
//
// -squall degrades the primary facility's wide-area link mid-experiment
// (capacity collapse plus probe-visible loss/jitter/bufferbloat) instead
// of taking the facility down; -probe attaches link-quality probing so
// placement sheds the degraded path, -lowwater tunes the shed threshold,
// and -adaptive derives each transfer's stream count and chunk size from
// the measured path instead of fixed flags. -degraded runs the canned
// WAN-squall scenario (core.FederatedDegradedScenario) in both arms and
// prints them side by side.
//
//	picoprobe-experiment [-kind both|hyperspectral|spatiotemporal]
//	    [-duration 1h] [-policy exponential|constant|linear|push]
//	    [-split] [-noreuse] [-detail]
//	    [-facilities 1] [-pin] [-outage] [-budget 0]
//	    [-squall] [-probe] [-lowwater 50] [-adaptive] [-degraded]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"picoprobe/internal/core"
	"picoprobe/internal/flows"
)

func main() {
	kind := flag.String("kind", "both", "hyperspectral, spatiotemporal or both")
	duration := flag.Duration("duration", time.Hour, "experiment window")
	policy := flag.String("policy", "exponential", "polling policy: exponential, constant, linear or push")
	split := flag.Bool("split", false, "run metadata extraction and image processing as separate compute states (ablation)")
	noreuse := flag.Bool("noreuse", false, "release compute nodes after every task (ablation)")
	detail := flag.Bool("detail", false, "print the per-stage Fig 4 decomposition")
	facilities := flag.Int("facilities", 1, "number of simulated facilities (1-3); >1 enables federated placement")
	pin := flag.Bool("pin", false, "pin every flow to the first facility (the single-backend baseline ablation)")
	outage := flag.Bool("outage", false, "take the primary facility down from minute 20:30 to 40:00")
	budget := flag.Duration("budget", 0, "queue-wait budget before a placed run fails over (0 = disabled)")
	squall := flag.Bool("squall", false, "degrade the primary facility's WAN link from minute 5 to 15 (capacity collapse + probe-visible loss/jitter)")
	probe := flag.Bool("probe", false, "attach link-quality probing; placement sheds paths scoring below -lowwater")
	lowWater := flag.Float64("lowwater", 50, "link score below which a facility sheds new runs (with -probe; 0 = observe-only)")
	adaptive := flag.Bool("adaptive", false, "derive transfer streams and chunk size from measured path quality (requires -probe)")
	degraded := flag.Bool("degraded", false, "run the canned WAN-squall scenario in both arms (static vs probe-aware) and exit")
	wireMode := flag.Bool("wire", false, "run a federated campaign over real sockets: spawn -wire-facilities localhost facility daemons and move every byte over TCP")
	wireFacilities := flag.Int("wire-facilities", 2, "daemons to spawn with -wire")
	wireFiles := flag.Int("wire-files", 6, "files in the -wire campaign")
	wireDegrade := flag.Duration("wire-degrade", 0, "with -wire and -probe: inject this read delay on facility 0 and show the probe seeing it")
	wireHealth := flag.Bool("wire-health", false, "with -wire: heartbeat-monitor every daemon and wire Up/Suspect/Down verdicts into placement")
	flag.Parse()

	if *wireMode {
		wireKind := *kind
		if wireKind == "both" {
			wireKind = "hyperspectral"
		}
		dir, err := os.MkdirTemp("", "picoprobe-wire-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		res, err := core.RunWireCampaign(core.WireCampaignConfig{
			Facilities: *wireFacilities,
			Files:      *wireFiles,
			Kind:       wireKind,
			Probe:      *probe,
			Health:     *wireHealth,
			Degrade:    *wireDegrade,
			Dir:        dir,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FormatWireCampaign(res))
		return
	}

	var pol flows.Policy
	switch *policy {
	case "exponential":
		pol = flows.DefaultExponential()
	case "constant":
		pol = flows.Constant{Interval: time.Second}
	case "linear":
		pol = flows.Linear{Step: time.Second, Cap: time.Minute}
	case "push":
		pol = flows.Push{Latency: 100 * time.Millisecond}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	if *degraded {
		fmt.Println("WAN-squall scenario (core.FederatedDegradedScenario): static placement vs probe-aware shedding")
		for _, arm := range []bool{false, true} {
			res, err := core.RunFederatedExperiment(core.FederatedDegradedScenario(arm))
			if err != nil {
				log.Fatal(err)
			}
			label := "static"
			if arm {
				label = "probe-aware (lowwater 50, adaptive transfer)"
			}
			fmt.Printf("\n--- %s ---\n", label)
			fmt.Println(core.FormatFacilities(res))
		}
		os.Exit(0)
	}
	if *adaptive && !*probe {
		log.Fatal("-adaptive requires -probe: the tuner has no measurements to derive framing from")
	}
	if *squall && *facilities < 2 {
		log.Fatal("-squall requires -facilities >= 2: degrading the only facility's path leaves placement nowhere to shed to")
	}
	if *outage && *facilities < 2 {
		log.Fatal("-outage requires -facilities >= 2: taking down the only facility has nowhere to fail over and simply fails the runs launched during the window")
	}
	if *pin && *budget > 0 {
		log.Fatal("-pin and -budget are contradictory: budget failover re-routes pinned runs, so the numbers would no longer measure the single-backend baseline")
	}
	federated := *facilities > 1 || *pin || *outage || *budget > 0 || *squall || *probe
	run := func(cfg core.ExperimentConfig) *core.FederatedResult {
		cfg.Duration = *duration
		cfg.Policy = pol
		cfg.SplitCompute = *split
		cfg.DisableNodeReuse = *noreuse
		fcfg := core.FederatedConfig{
			ExperimentConfig: cfg,
			Facilities:       core.DefaultFederationSpecs(*facilities),
			QueueWaitBudget:  *budget,
		}
		if *outage {
			fcfg.Facilities[0].OutageStart = 20*time.Minute + 30*time.Second
			fcfg.Facilities[0].OutageEnd = 40 * time.Minute
		}
		if *squall {
			fcfg.Facilities[0].Squalls = []core.SquallSpec{{
				Start: 5 * time.Minute, End: 15 * time.Minute, Ramp: 2 * time.Minute,
				CapacityFactor: 0.004, Loss: 0.08,
				Jitter: 60 * time.Millisecond, ExtraRTT: 150 * time.Millisecond,
			}}
		}
		if *probe {
			fcfg.Probe = &core.ProbeConfig{LowWater: *lowWater, AdaptiveTransfer: *adaptive}
		}
		if *pin {
			fcfg.PinTo = fcfg.Facilities[0].ID
		}
		res, err := core.RunFederatedExperiment(fcfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	var rows []core.Table1Row
	var details, federation []string
	collect := func(label string, cfg core.ExperimentConfig, paper core.Table1Row) {
		res := run(cfg)
		rows = append(rows, res.Table1(), paper)
		details = append(details, core.FormatStages(label, res.Stages()))
		if federated {
			federation = append(federation, core.FormatFacilities(res))
		}
	}
	if *kind == "both" || *kind == "hyperspectral" {
		collect("hyperspectral", core.HyperspectralExperiment(), core.PaperTable1Hyperspectral)
	}
	if *kind == "both" || *kind == "spatiotemporal" {
		collect("spatiotemporal", core.SpatiotemporalExperiment(), core.PaperTable1Spatiotemporal)
	}
	if len(rows) == 0 {
		log.Fatalf("unknown kind %q", *kind)
	}

	fmt.Printf("Simulated %v evaluation (policy=%s split=%v noreuse=%v facilities=%d pin=%v outage=%v budget=%v squall=%v probe=%v adaptive=%v)\n\n",
		*duration, *policy, *split, *noreuse, *facilities, *pin, *outage, *budget, *squall, *probe, *adaptive)
	fmt.Println(core.FormatTable1(rows...))
	if *detail {
		for _, d := range details {
			fmt.Println()
			fmt.Println(d)
		}
	}
	for _, f := range federation {
		fmt.Println()
		fmt.Println(f)
	}
	os.Exit(0)
}
