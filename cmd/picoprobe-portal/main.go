// Command picoprobe-portal serves the DGPF-like data portal over a search
// index snapshot and an artifact directory. With -demo it first generates
// and analyzes synthetic hyperspectral and spatiotemporal acquisitions so
// the portal has something to show.
//
// Usage:
//
//	picoprobe-portal -demo -addr :8080
//	picoprobe-portal -index index.jsonl -artifacts ./artifacts -addr :8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"picoprobe/internal/core"
	"picoprobe/internal/detect"
	"picoprobe/internal/metadata"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
	"picoprobe/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "search index snapshot (JSON lines, from a previous run)")
	artifacts := flag.String("artifacts", "picoprobe-work/artifacts", "artifact directory to serve")
	demo := flag.Bool("demo", false, "generate and analyze demo data first")
	flag.Parse()

	index := search.NewIndex()
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := search.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		index = loaded
	}
	if *demo {
		if err := seedDemo(index, *artifacts); err != nil {
			log.Fatal(err)
		}
	}

	srv, err := portal.NewServer(portal.Config{Index: index, ArtifactRoot: *artifacts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portal with %d record(s) listening on %s\n", index.Count(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func seedDemo(index *search.Index, artifacts string) error {
	tmp, err := os.MkdirTemp("", "picoprobe-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	mic := synth.DefaultMicroscope()

	hs, err := synth.GenerateHyperspectral(synth.HyperspectralConfig{Height: 64, Width: 64, Channels: 256, Seed: 4})
	if err != nil {
		return err
	}
	hsPath := filepath.Join(tmp, "hs.emdg")
	if err := hs.WriteEMD(hsPath, mic, &metadata.Acquisition{
		SampleName: "polyamide-film-demo", Operator: "demo", Collected: time.Now().UTC(),
	}); err != nil {
		return err
	}
	hsOut, err := core.AnalyzeHyperspectral(hsPath, artifacts)
	if err != nil {
		return err
	}
	if err := ingest(index, hsOut); err != nil {
		return err
	}

	st := synth.GenerateSpatiotemporal(synth.SpatiotemporalConfig{Frames: 24, Height: 96, Width: 96, Particles: 6, Seed: 5})
	stPath := filepath.Join(tmp, "st.emdg")
	if err := st.WriteEMD(stPath, mic, &metadata.Acquisition{
		SampleName: "au-on-carbon-demo", Operator: "demo", Collected: time.Now().UTC(),
	}); err != nil {
		return err
	}
	stOut, err := core.AnalyzeSpatiotemporal(stPath, artifacts, detect.DefaultParams())
	if err != nil {
		return err
	}
	return ingest(index, stOut)
}

func ingest(index *search.Index, out *core.AnalysisOutput) error {
	raw, err := core.SearchEntry(out.Experiment)
	if err != nil {
		return err
	}
	var entry search.Entry
	if err := json.Unmarshal(raw, &entry); err != nil {
		return err
	}
	return index.Ingest(entry)
}
