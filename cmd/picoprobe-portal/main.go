// Command picoprobe-portal serves the DGPF-like data portal over a search
// index snapshot and an artifact directory. With -demo it first generates
// synthetic hyperspectral and spatiotemporal acquisitions and runs them
// through live flows (the hyperspectral one as the fan-out DAG), so the
// portal has records to show and /flows has run DAGs to render. With
// -federation it additionally runs the simulated federated scenario
// (three facilities, mid-experiment outage) and serves the resulting
// per-facility load and placements under /facilities. With -pprof it
// additionally serves net/http/pprof on a localhost side port, so the
// catalog serving paths can be profiled against the live binary.
//
// With -durable DIR the catalog and the flow run records are journaled
// under DIR (DESIGN.md §9): every publication hits the WAL before it
// becomes visible, and a portal restarted on the same DIR — cleanly or
// after kill -9 — recovers the catalog and lists the prior runs under
// /flows. The simulated -federation scenario is re-derived each boot
// (it is deterministic), not restored; live embedders journal their
// registry with facility.Registry.OpenJournal.
//
// The production serving layer (DESIGN.md §13) is opt-in: -cache turns
// on epoch-keyed response caching (strong ETags, 304 revalidation,
// bounded memoization), -events serves live run/flow/facility
// transitions over SSE at /api/events, -metrics serves Prometheus text
// at /metrics, and -limit-rps/-max-inflight enable admission control
// (429 + Retry-After per principal, 503 shed past the in-flight cap).
//
// Usage:
//
//	picoprobe-portal -demo -federation -addr :8080
//	picoprobe-portal -index index.jsonl -artifacts ./artifacts -addr :8080
//	picoprobe-portal -demo -durable ./picoprobe-work/durable
//	picoprobe-portal -durable ./picoprobe-work/durable   # recover and serve
//	picoprobe-portal -demo -pprof localhost:6060
//	picoprobe-portal -demo -cache -events -metrics -limit-rps 50 -max-inflight 256
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof side port
	"os"
	"path/filepath"
	"time"

	"picoprobe/internal/core"
	"picoprobe/internal/durable"
	"picoprobe/internal/facility"
	"picoprobe/internal/flows"
	"picoprobe/internal/metadata"
	"picoprobe/internal/obs"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
	"picoprobe/internal/sim"
	"picoprobe/internal/synth"
)

// reportRecovery prints what the durable layer replayed at boot.
func reportRecovery(rec core.DurableRecovery) {
	c, r := rec.Catalog, rec.Runs
	fmt.Printf("durable: catalog recovered %d journaled record(s) + snapshot@%d, %d run record(s)\n",
		c.Records, c.SnapshotLSN, rec.RestoredRuns)
	if c.TornTail || r.TornTail {
		fmt.Printf("durable: torn WAL tail truncated (crash mid-write detected)\n")
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "search index snapshot (JSON lines, from a previous run)")
	artifacts := flag.String("artifacts", "picoprobe-work/artifacts", "artifact directory to serve")
	demo := flag.Bool("demo", false, "generate demo data and run it through live flows first")
	federation := flag.Bool("federation", false, "run the simulated federated scenario and serve /facilities")
	durableDir := flag.String("durable", "", "journal the catalog and run records under this directory and recover them at boot")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
	cache := flag.Bool("cache", false, "enable epoch-keyed response caching (ETag/304 + memoization) on the catalog routes")
	events := flag.Bool("events", false, "serve live run/flow/facility transitions over SSE at /api/events")
	metrics := flag.Bool("metrics", false, "serve Prometheus text metrics at /metrics")
	limitRPS := flag.Float64("limit-rps", 0, "per-principal admission rate in requests/sec (0 disables rate limiting)")
	limitBurst := flag.Float64("limit-burst", 0, "admission burst capacity (default: rate)")
	maxInFlight := flag.Int("max-inflight", 0, "global in-flight request cap; excess sheds with 503 (0 disables)")
	flag.Parse()

	if *pprofAddr != "" {
		// The profiler rides the DefaultServeMux on its own listener, so
		// profiling the live serving benchmarks never exposes /debug/pprof
		// through the portal itself. Bind it to localhost.
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	index := search.NewIndex()
	var engine *flows.Engine
	var registry *facility.Registry
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := search.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		index = loaded
	}
	if *demo {
		dep, err := seedDemo(*artifacts, *durableDir)
		if err != nil {
			log.Fatal(err)
		}
		index = dep.Index
		engine = dep.Engine
		reportRecovery(dep.Recovery)
	} else if *durableDir != "" {
		// Recover a previously journaled portal: the catalog comes back as
		// one IngestBatch, the run records repopulate /flows. The engine has
		// no providers — it only lists recovered runs.
		catalog, cstats, err := search.OpenDurable(filepath.Join(*durableDir, "catalog"), search.DurableOptions{})
		if err != nil {
			log.Fatal(err)
		}
		runlog, recs, rstats, err := flows.OpenRunLog(filepath.Join(*durableDir, "runs"), durable.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer catalog.Close()
		defer runlog.Close()
		index = catalog.Index()
		engine = flows.NewEngine(sim.NewLiveRuntime(1), flows.Options{})
		engine.Restore(recs)
		reportRecovery(core.DurableRecovery{Catalog: cstats, Runs: rstats, RestoredRuns: len(recs)})
	}
	if *federation {
		res, err := core.RunFederatedExperiment(core.FederatedScenario())
		if err != nil {
			log.Fatal(err)
		}
		registry = res.Registry
		fmt.Printf("federated scenario: %d runs, %d failover(s), %d re-stage(s)\n",
			len(res.Runs), res.Placement.Failovers, res.Placement.Restages)
	}

	cfg := portal.Config{Index: index, ArtifactRoot: *artifacts, Flows: engine, Facilities: registry}
	if *cache {
		cfg.Cache = &portal.CacheConfig{}
	}
	if *limitRPS > 0 || *maxInFlight > 0 {
		cfg.Limits = &portal.LimitConfig{RatePerSec: *limitRPS, Burst: *limitBurst, MaxInFlight: *maxInFlight}
	}
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	if *events {
		hub := portal.NewHub()
		cfg.Events = hub
		// Tap the live producers: run transitions from the engine, placement
		// transitions from the federation registry.
		if engine != nil {
			engine.SetEventSink(hub.FlowSink())
		}
		if registry != nil {
			registry.SetEventSink(hub.FacilitySink())
		}
	}
	srv, err := portal.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portal with %d record(s) listening on %s\n", index.Count(), *addr)
	if engine != nil {
		fmt.Printf("flow runs under /flows\n")
	}
	if registry != nil {
		fmt.Printf("facilities under /facilities\n")
	}
	if *events {
		fmt.Printf("live events under /api/events\n")
	}
	if *metrics {
		fmt.Printf("metrics under /metrics\n")
	}
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// seedDemo stages two synthetic acquisitions and runs them through the
// live engine: the hyperspectral file through the fan-out DAG
// (Transfer → {Analysis ∥ Thumbnail} → Publication), the spatiotemporal
// one through the straight line. With durableDir set, the deployment
// journals the catalog and run records there, on top of whatever a prior
// boot journaled.
func seedDemo(artifacts, durableDir string) (*core.LiveDeployment, error) {
	work, err := os.MkdirTemp("", "picoprobe-demo")
	if err != nil {
		return nil, err
	}
	// The staged EMD copies and the eagle landing zone are only needed
	// while the flows run (the portal serves from artifacts); clean up on
	// every path, including seed failures.
	defer os.RemoveAll(work)
	instrument := filepath.Join(work, "instrument")
	if err := os.MkdirAll(instrument, 0o755); err != nil {
		return nil, err
	}
	mic := synth.DefaultMicroscope()

	hs, err := synth.GenerateHyperspectral(synth.HyperspectralConfig{Height: 64, Width: 64, Channels: 256, Seed: 4})
	if err != nil {
		return nil, err
	}
	if err := hs.WriteEMD(filepath.Join(instrument, "hs.emdg"), mic, &metadata.Acquisition{
		SampleName: "polyamide-film-demo", Operator: "demo", Collected: time.Now().UTC(),
	}); err != nil {
		return nil, err
	}
	st := synth.GenerateSpatiotemporal(synth.SpatiotemporalConfig{Frames: 24, Height: 96, Width: 96, Particles: 6, Seed: 5})
	if err := st.WriteEMD(filepath.Join(instrument, "st.emdg"), mic, &metadata.Acquisition{
		SampleName: "au-on-carbon-demo", Operator: "demo", Collected: time.Now().UTC(),
	}); err != nil {
		return nil, err
	}

	dep, err := core.NewLiveDeployment(core.LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      filepath.Join(work, "eagle"),
		OutDir:         artifacts,
		DurableDir:     durableDir,
	})
	if err != nil {
		return nil, err
	}
	if _, err := dep.RunDefinition(dep.FanOutDefinition("hyperspectral"), "hs.emdg"); err != nil {
		return nil, err
	}
	if _, err := dep.RunFile("spatiotemporal", "st.emdg"); err != nil {
		return nil, err
	}
	return dep, nil
}
