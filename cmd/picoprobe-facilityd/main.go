// Command picoprobe-facilityd is the facility-side wire daemon: one
// process per HPC facility, serving the three wire services on plain
// TCP (DESIGN.md §11) — ranged chunk I/O under its storage root for the
// acquisition side's WireMover, compute dispatch into a local worker
// pool running the real analysis functions, and the status endpoint
// link-quality probers measure RTT and goodput against.
//
// The daemon is deliberately stateless across restarts: the only
// durable state is the files under -root, and transfer resume
// bookkeeping lives in the client's chunk manifests. SIGKILL it
// mid-transfer, restart it on the same root, and the client completes
// with O(remaining chunks) re-moved bytes.
//
// Graceful degradation (DESIGN.md §12): -max-sessions caps concurrent
// wire sessions (excess connections get a typed busy error clients back
// off on), -idle-timeout reaps sessions whose peer went silent, and
// SIGTERM drains — the daemon stops accepting, finishes in-flight chunk
// writes for up to -drain, then exits. SIGINT (or a second SIGTERM)
// still closes immediately.
//
// Usage:
//
//	picoprobe-facilityd -root /data/eagle [-addr 127.0.0.1:7421]
//	    [-id alcf-eagle] [-secret ...] [-workers 2] [-out DIR]
//	    [-max-sessions 64] [-idle-timeout 2m] [-drain 30s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"picoprobe/internal/auth"
	"picoprobe/internal/compute"
	"picoprobe/internal/core"
	"picoprobe/internal/detect"
	"picoprobe/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7421", "TCP address to listen on (use :0 for an ephemeral port)")
	root := flag.String("root", "", "facility storage root all wire file ops are confined to (required)")
	id := flag.String("id", "alcf-eagle", "facility ID reported in Hello/Status responses")
	secret := flag.String("secret", core.WireSecretDefault, "shared HMAC secret session tokens are verified against")
	workers := flag.Int("workers", 2, "concurrent compute tasks in the local pool")
	out := flag.String("out", "", "analysis artifact directory (default <root>/analysis-out)")
	maxSessions := flag.Int("max-sessions", 64, "max concurrent wire sessions; excess connections get a typed busy error (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "drop sessions idle longer than this (0 = never)")
	drain := flag.Duration("drain", 30*time.Second, "SIGTERM grace: finish in-flight requests for up to this long before exiting (0 = wait indefinitely)")
	flag.Parse()

	if *root == "" {
		log.Fatal("picoprobe-facilityd: -root is required")
	}
	outDir := *out
	if outDir == "" {
		outDir = filepath.Join(*root, "analysis-out")
	}
	for _, dir := range []string{*root, outDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatalf("picoprobe-facilityd: %v", err)
		}
	}

	issuer := auth.NewIssuer([]byte(*secret), nil)
	registry := compute.NewRegistry()
	core.RegisterAnalysisFunctions(registry, outDir, detect.DefaultParams())
	csvc := compute.NewService(issuer, registry, compute.NewLocalExecutor(*workers, nil), time.Now)
	// The daemon's own compute token: wire sessions were already
	// authenticated at Hello, so dispatches run under this identity.
	ctoken, err := issuer.Issue("facilityd@"+*id, []string{auth.ScopeCompute}, 365*24*time.Hour)
	if err != nil {
		log.Fatalf("picoprobe-facilityd: %v", err)
	}

	srv := &wire.Server{
		Root:     *root,
		Facility: *id,
		Verify: func(token string) error {
			_, err := issuer.Verify(token, auth.ScopeTransfer)
			return err
		},
		Compute:      csvc,
		ComputeToken: ctoken,
		MaxSessions:  *maxSessions,
		IdleTimeout:  *idleTimeout,
		Logf:         log.Printf,
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("picoprobe-facilityd: %v", err)
	}
	fmt.Printf("picoprobe-facilityd: facility %q serving %s on %s\n", *id, *root, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful drain: stop accepting, let in-flight requests finish
		// within the grace window. A second signal forces an immediate
		// close.
		log.Printf("picoprobe-facilityd: SIGTERM, draining (grace %v)", *drain)
		done := make(chan struct{})
		go func() {
			srv.Drain(*drain)
			close(done)
		}()
		select {
		case <-done:
		case <-sig:
			log.Printf("picoprobe-facilityd: second signal, closing now")
			srv.Close()
		}
		return
	}
	srv.Close()
}
