// Command picoprobe-facilityd is the facility-side wire daemon: one
// process per HPC facility, serving the three wire services on plain
// TCP (DESIGN.md §11) — ranged chunk I/O under its storage root for the
// acquisition side's WireMover, compute dispatch into a local worker
// pool running the real analysis functions, and the status endpoint
// link-quality probers measure RTT and goodput against.
//
// The daemon is deliberately stateless across restarts: the only
// durable state is the files under -root, and transfer resume
// bookkeeping lives in the client's chunk manifests. SIGKILL it
// mid-transfer, restart it on the same root, and the client completes
// with O(remaining chunks) re-moved bytes.
//
// Usage:
//
//	picoprobe-facilityd -root /data/eagle [-addr 127.0.0.1:7421]
//	    [-id alcf-eagle] [-secret ...] [-workers 2] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"picoprobe/internal/auth"
	"picoprobe/internal/compute"
	"picoprobe/internal/core"
	"picoprobe/internal/detect"
	"picoprobe/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7421", "TCP address to listen on (use :0 for an ephemeral port)")
	root := flag.String("root", "", "facility storage root all wire file ops are confined to (required)")
	id := flag.String("id", "alcf-eagle", "facility ID reported in Hello/Status responses")
	secret := flag.String("secret", core.WireSecretDefault, "shared HMAC secret session tokens are verified against")
	workers := flag.Int("workers", 2, "concurrent compute tasks in the local pool")
	out := flag.String("out", "", "analysis artifact directory (default <root>/analysis-out)")
	flag.Parse()

	if *root == "" {
		log.Fatal("picoprobe-facilityd: -root is required")
	}
	outDir := *out
	if outDir == "" {
		outDir = filepath.Join(*root, "analysis-out")
	}
	for _, dir := range []string{*root, outDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatalf("picoprobe-facilityd: %v", err)
		}
	}

	issuer := auth.NewIssuer([]byte(*secret), nil)
	registry := compute.NewRegistry()
	core.RegisterAnalysisFunctions(registry, outDir, detect.DefaultParams())
	csvc := compute.NewService(issuer, registry, compute.NewLocalExecutor(*workers, nil), time.Now)
	// The daemon's own compute token: wire sessions were already
	// authenticated at Hello, so dispatches run under this identity.
	ctoken, err := issuer.Issue("facilityd@"+*id, []string{auth.ScopeCompute}, 365*24*time.Hour)
	if err != nil {
		log.Fatalf("picoprobe-facilityd: %v", err)
	}

	srv := &wire.Server{
		Root:     *root,
		Facility: *id,
		Verify: func(token string) error {
			_, err := issuer.Verify(token, auth.ScopeTransfer)
			return err
		},
		Compute:      csvc,
		ComputeToken: ctoken,
		Logf:         log.Printf,
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("picoprobe-facilityd: %v", err)
	}
	fmt.Printf("picoprobe-facilityd: facility %q serving %s on %s\n", *id, *root, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}
