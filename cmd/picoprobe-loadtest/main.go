// Command picoprobe-loadtest drives the portal serving layer at scale
// (BENCHMARKS.md "Portal load test"). It has three modes:
//
//	picoprobe-loadtest -serve [-records N] [-churn N] [-cache=false] ...
//	  Serve a synthetic campaign portal on -addr (default an ephemeral
//	  port, printed as "LISTEN host:port" on stdout). -churn N keeps a
//	  writer re-ingesting N records/sec, so the epoch advances under
//	  load exactly as a live beam line would advance it.
//
//	picoprobe-loadtest -addr host:port [-conns N] [-duration D] ...
//	  Client mode: drive an already-running server and print the
//	  recorded percentiles.
//
//	picoprobe-loadtest -spawn [-conns N] ...
//	  Re-exec this binary as a -serve child, wait for its LISTEN line,
//	  run the client against it, then kill the child. One process per
//	  side keeps each under the per-process fd limit, which is what a
//	  10k-connection run needs (2×10k fds split across two processes).
//
// The server defaults to the full serving layer (cache, admission off
// unless -limit-rps is set, /metrics); -cache=false serves the uncached
// baseline for the ablation table.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"picoprobe/internal/loadgen"
	"picoprobe/internal/obs"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
)

func main() {
	var (
		// shared / client
		addr       = flag.String("addr", "", "server address (client mode) or listen address (serve mode; default 127.0.0.1:0)")
		conns      = flag.Int("conns", 1000, "concurrent persistent connections")
		duration   = flag.Duration("duration", 10*time.Second, "measured window")
		warmup     = flag.Duration("warmup", 2*time.Second, "warmup window (not recorded)")
		rps        = flag.Float64("rps", 0, "open-loop aggregate request rate; 0 = closed loop")
		revalidate = flag.Float64("revalidate", 0.25, "fraction of requests replaying the last ETag as If-None-Match")

		// serve / spawn
		serve     = flag.Bool("serve", false, "serve a synthetic campaign portal instead of generating load")
		spawn     = flag.Bool("spawn", false, "re-exec a -serve child, load it, kill it")
		records   = flag.Int("records", 100_000, "serve: synthetic campaign size")
		churn     = flag.Int("churn", 50, "serve: ingest churn rate (records/sec re-ingested; 0 disables)")
		cache     = flag.Bool("cache", true, "serve: enable the epoch-keyed response cache")
		limitRPS  = flag.Float64("limit-rps", 0, "serve: per-principal admission rate (0 = no rate limit)")
		limitBur  = flag.Float64("limit-burst", 0, "serve: admission burst (default = rate)")
		inflight  = flag.Int("inflight", 0, "serve: global in-flight cap (0 = uncapped)")
		quietLoad = flag.Bool("quiet", false, "suppress per-phase progress output")
	)
	flag.Parse()

	switch {
	case *serve:
		runServer(*addr, *records, *churn, *cache, *limitRPS, *limitBur, *inflight)
	case *spawn:
		child, childAddr := spawnServer(*records, *churn, *cache, *limitRPS, *limitBur, *inflight)
		defer func() {
			child.Process.Signal(syscall.SIGTERM)
			child.Wait()
		}()
		runClient(childAddr, *conns, *duration, *warmup, *rps, *revalidate, *quietLoad)
	default:
		if *addr == "" {
			log.Fatal("client mode needs -addr (or use -spawn / -serve)")
		}
		runClient(*addr, *conns, *duration, *warmup, *rps, *revalidate, *quietLoad)
	}
}

// runServer builds the synthetic campaign portal and serves it until
// SIGINT/SIGTERM. It prints "LISTEN host:port" once the socket is bound
// — the handshake -spawn waits for.
func runServer(addr string, records, churn int, cache bool, limitRPS, limitBurst float64, inflight int) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	entries := loadgen.Campaign(records)
	ix := search.NewIndex()
	if err := ix.IngestBatch(entries); err != nil {
		log.Fatal(err)
	}

	cfg := portal.Config{Index: ix, Metrics: obs.NewRegistry(), Events: portal.NewHub()}
	if cache {
		cfg.Cache = &portal.CacheConfig{}
	}
	if limitRPS > 0 || inflight > 0 {
		cfg.Limits = &portal.LimitConfig{RatePerSec: limitRPS, Burst: limitBurst, MaxInFlight: inflight}
	}
	srv, err := portal.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	// The LISTEN line is the spawn-mode handshake; keep it first and alone.
	fmt.Printf("LISTEN %s\n", ln.Addr())
	os.Stdout.Sync()
	fmt.Fprintf(os.Stderr, "serving %d records (cache=%v limit=%g/s burst=%g inflight=%d churn=%d/s)\n",
		ix.Count(), cache, limitRPS, limitBurst, inflight, churn)

	if churn > 0 {
		go func() {
			rng := rand.New(rand.NewSource(7))
			tick := time.NewTicker(time.Second / time.Duration(churn))
			defer tick.Stop()
			for range tick.C {
				if err := ix.Ingest(entries[rng.Intn(len(entries))]); err != nil {
					log.Printf("churn ingest: %v", err)
					return
				}
			}
		}()
	}

	hs := &http.Server{Handler: srv}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		hs.Close()
	}()
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// spawnServer re-execs this binary as a -serve child and returns the
// running child plus the address it bound.
func spawnServer(records, churn int, cache bool, limitRPS, limitBurst float64, inflight int) (*exec.Cmd, string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	child := exec.Command(self,
		"-serve",
		fmt.Sprintf("-records=%d", records),
		fmt.Sprintf("-churn=%d", churn),
		fmt.Sprintf("-cache=%v", cache),
		fmt.Sprintf("-limit-rps=%g", limitRPS),
		fmt.Sprintf("-limit-burst=%g", limitBurst),
		fmt.Sprintf("-inflight=%d", inflight),
	)
	child.Stderr = os.Stderr
	out, err := child.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := child.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
			go loadgen.Discard(out) // keep draining so the child never blocks on stdout
			return child, addr
		}
	}
	child.Process.Kill()
	log.Fatal("server child exited before printing LISTEN")
	return nil, ""
}

// runClient executes one load run and prints the recorded result.
func runClient(addr string, conns int, duration, warmup time.Duration, rps, revalidate float64, quiet bool) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if !quiet {
		mode := "closed-loop"
		if rps > 0 {
			mode = fmt.Sprintf("open-loop %.0f rps", rps)
		}
		fmt.Fprintf(os.Stderr, "loading %s: %d conns, %s, warmup %v + %v\n", addr, conns, mode, warmup, duration)
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		Addr:       addr,
		Conns:      conns,
		Duration:   duration,
		Warmup:     warmup,
		RPS:        rps,
		Targets:    loadgen.DefaultTargets(),
		Revalidate: revalidate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format())
	if res.Conns < conns {
		fmt.Fprintf(os.Stderr, "warning: only %d of %d connections established\n", res.Conns, conns)
	}
}
