// Future detectors: the paper warns that next-generation detectors will
// produce up to 65 GB/s (~200 TB/hour) and that on-site infrastructure
// (1 Gbps today) must be upgraded. This example sweeps the effective
// per-stream transfer bandwidth across upgrade scenarios and reports,
// for each, whether the spatiotemporal flow keeps pace with the
// instrument's data velocity and where the orchestration overhead share
// goes as transfers stop dominating.
//
//	go run ./examples/futuredetectors
package main

import (
	"fmt"
	"log"
	"time"

	"picoprobe"
)

func main() {
	type scenario struct {
		label     string
		streamBps float64
		switchBps float64
	}
	scenarios := []scenario{
		{"today: shared 1 Gbps switch (measured stream)", 82e6, 1e9},
		{"dedicated 1 Gbps", 1e9, 1e9},
		{"10 Gbps uplink", 10e9, 10e9},
		{"200 Gbps backbone share", 100e9, 200e9},
	}

	fmt.Println("Spatiotemporal flow (1200 MB files every 120 s) under on-site upgrades")
	fmt.Println()
	fmt.Printf("%-44s %10s %10s %12s %8s\n", "scenario", "runs/h", "mean s", "overhead %", "keeps up")
	for _, sc := range scenarios {
		cfg := picoprobe.SpatiotemporalExperiment()
		cfg.Profile.StreamCapBps = sc.streamBps
		cfg.Profile.SiteSwitchBps = sc.switchBps
		res, err := picoprobe.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		row := res.Table1()
		// The flow "keeps up" when its mean runtime stays below the
		// file-generation cadence.
		cadence := (cfg.StartPeriod + time.Duration(float64(cfg.FileBytes)/cfg.Profile.StagingBps*float64(time.Second)) + cfg.Profile.CycleFixed).Seconds()
		keeps := "yes"
		if row.MeanRuntimeS > cadence {
			keeps = "NO"
		}
		fmt.Printf("%-44s %10d %10.0f %12.1f %8s\n",
			sc.label, row.TotalRuns, row.MeanRuntimeS, row.MedianOverheadPct, keeps)
	}

	fmt.Println()
	fmt.Println("Toward 65 GB/s detectors: required sustained off-site bandwidth")
	for _, dailyTB := range []float64{0.1, 1, 10, 234} { // 234 TB/h = 65 GB/s
		bps := dailyTB * 1e12 * 8 / 3600
		fmt.Printf("  %7.1f TB/hour of data  ->  %8.1f Gbit/s sustained\n", dailyTB, bps/1e9)
	}
	fmt.Println()
	fmt.Println("Conclusion (matches the paper): transfer is the bottleneck today;")
	fmt.Println("as links improve, the polling-backoff orchestration overhead becomes")
	fmt.Println("the dominant cost and push-based flow notification pays off.")
}
