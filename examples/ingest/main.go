// Ingest: the acquisition-side data plane (DESIGN.md §8) under fire. A
// simulated detector burst drops six files into the instrument's transfer
// directory; the watcher settles them, the batcher coalesces the burst
// into one multi-file transfer task under a bytes-in-flight budget, and
// the chunked live mover starts moving it over four concurrent streams —
// until an injected fault kills the transfer mid-flight. The walkthrough
// then "reboots" the transfer service and shows chunk-level resume: the
// resubmitted task re-moves only the chunks the manifest has not verified
// yet, so the retry cost is the remaining bytes, not the whole burst.
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"picoprobe/internal/auth"
	"picoprobe/internal/transfer"
	"picoprobe/internal/watcher"
)

const (
	fileBytes  = 1 << 20 // 1 MB per burst file
	chunkBytes = 128 << 10
	streams    = 4
)

func main() {
	work, err := os.MkdirTemp("", "picoprobe-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	instrument := filepath.Join(work, "instrument")
	eagle := filepath.Join(work, "eagle")
	manifests := filepath.Join(work, "manifests")
	for _, d := range []string{instrument, eagle} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// --- 1. the detector burst, settled and batched --------------------
	w, err := watcher.New(instrument, watcher.Options{
		Interval:    5 * time.Millisecond,
		SettlePolls: 2,
		Pattern:     "*.emdg",
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	batcher := watcher.NewBatcher(w.Events(), watcher.BatchOptions{
		MaxBatchFiles: 8,
		Linger:        150 * time.Millisecond,
		BudgetBytes:   64 << 20,
	})

	fmt.Println("detector burst: 6 files hit the transfer directory")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		payload := make([]byte, fileBytes)
		rng.Read(payload)
		name := fmt.Sprintf("burst-%02d.emdg", i)
		if err := os.WriteFile(filepath.Join(instrument, name), payload, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	batch := <-batcher.Batches()
	var files []transfer.FileSpec
	for _, ev := range batch.Files {
		rel, _ := filepath.Rel(instrument, ev.Path)
		files = append(files, transfer.FileSpec{RelPath: rel})
	}
	fmt.Printf("batcher coalesced the burst: batch #%d, %d files, %.1f MB as ONE transfer task\n\n",
		batch.Seq, len(batch.Files), float64(batch.Bytes)/1e6)

	// --- 2. the chunked transfer, killed mid-flight ---------------------
	issuer := auth.NewIssuer([]byte("ingest-example"), nil)
	token, err := issuer.Issue("operator@picoprobe", []string{auth.ScopeTransfer}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	totalChunks := 6 * (fileBytes / chunkBytes)
	killAt := totalChunks / 3

	svc1 := transfer.NewService(issuer, &transfer.LiveMover{
		Checksum:        true,
		ChunkBytes:      chunkBytes,
		Streams:         streams,
		ManifestDir:     manifests,
		KillAfterChunks: killAt, // the injected mid-flight crash
	}, time.Now, transfer.Options{MaxAttempts: 1})
	svc1.RegisterEndpoint(transfer.Endpoint{ID: "instrument", Root: instrument})
	svc1.RegisterEndpoint(transfer.Endpoint{ID: "eagle", Root: eagle})

	fmt.Printf("moving %d chunks of %d KB over %d streams — killing the transfer after %d chunks...\n",
		totalChunks, chunkBytes>>10, streams, killAt)
	id1, err := svc1.Submit(token, "instrument", "eagle", files)
	if err != nil {
		log.Fatal(err)
	}
	v1 := waitDone(svc1, token, id1)
	fmt.Printf("  task %s: %s (%s)\n", v1.ID, v1.Status, v1.Error)
	fmt.Printf("  chunks moved before the crash: %d/%d (%.1f MB verified in the manifest)\n\n",
		v1.ChunksMoved, v1.ChunksTotal, float64(v1.BytesCopied)/1e6)

	// --- 3. reboot, resubmit, resume ------------------------------------
	fmt.Println("\"rebooting\" the transfer service (fresh mover, same manifest directory)...")
	svc2 := transfer.NewService(issuer, &transfer.LiveMover{
		Checksum:    true,
		ChunkBytes:  chunkBytes,
		Streams:     streams,
		ManifestDir: manifests,
	}, time.Now, transfer.Options{})
	svc2.RegisterEndpoint(transfer.Endpoint{ID: "instrument", Root: instrument})
	svc2.RegisterEndpoint(transfer.Endpoint{ID: "eagle", Root: eagle})
	id2, err := svc2.Submit(token, "instrument", "eagle", files)
	if err != nil {
		log.Fatal(err)
	}
	v2 := waitDone(svc2, token, id2)
	fmt.Printf("  task %s: %s\n", v2.ID, v2.Status)
	fmt.Printf("  chunk-level resume: skipped %d already-verified chunks, re-moved only %d (%.1f MB instead of %.1f MB)\n",
		v2.ChunksSkipped, v2.ChunksMoved,
		float64(v2.BytesCopied)/1e6, float64(v2.BytesMoved)/1e6)
	if v2.Status != transfer.StatusSucceeded {
		log.Fatalf("resume failed: %s", v2.Error)
	}
	batcher.Done(batch)

	saved := float64(v2.ChunksSkipped) / float64(v2.ChunksTotal) * 100
	fmt.Printf("\nretry cost is O(remaining chunks): %.0f%% of the burst never crossed the wire twice.\n", saved)
	fmt.Println("every file landed SHA-256-verified (per-chunk digests + whole-file verified merge).")
}

// waitDone polls a task to a terminal state.
func waitDone(svc *transfer.Service, token, id string) transfer.TaskView {
	for {
		view, err := svc.Status(token, id)
		if err != nil {
			log.Fatal(err)
		}
		if view.Status != transfer.StatusActive {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
}
