// Reinterrogation: the FAIR-catalog use case the paper motivates —
// "domain scientists [get] the ability to reinterrogate data from past
// experiments to yield additional scientific value". A month-long campaign
// of experiments from two operators is published to the search index, then
// queried by element, kind, date range and visibility.
//
//	go run ./examples/reinterrogation
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"picoprobe/internal/search"
)

func main() {
	index := search.NewIndex()

	// Publish a campaign: 4 weeks, alternating samples and operators.
	operators := []string{"zaluzec@anl.gov", "brace@anl.gov"}
	elements := [][]string{{"C", "N", "O", "Pb"}, {"C", "Au"}, {"C", "N", "O", "Au", "Pb"}}
	kinds := []string{"hyperspectral", "spatiotemporal"}
	base := time.Date(2023, 6, 1, 9, 0, 0, 0, time.UTC)
	n := 0
	for day := 0; day < 28; day++ {
		for runIdx := 0; runIdx < 3; runIdx++ {
			op := operators[(day+runIdx)%2]
			els := elements[(day+runIdx)%3]
			kind := kinds[runIdx%2]
			collected := base.AddDate(0, 0, day).Add(time.Duration(runIdx) * 2 * time.Hour)
			record := map[string]any{
				"sample":   fmt.Sprintf("campaign-s%02d", day%7),
				"operator": op,
				"elements": els,
			}
			payload, _ := json.Marshal(record)
			entry := search.Entry{
				ID:   fmt.Sprintf("exp-%03d", n),
				Text: fmt.Sprintf("%s acquisition of campaign-s%02d with %v by %s", kind, day%7, els, op),
				Fields: map[string]string{
					"kind":     kind,
					"operator": op,
					"sample":   fmt.Sprintf("campaign-s%02d", day%7),
				},
				Numbers: map[string]float64{"beam_energy_kev": 200 + float64(day%3)*50},
				Date:    collected,
				Payload: payload,
			}
			// Every fourth record is embargoed to its operator.
			if n%4 == 0 {
				entry.VisibleTo = []string{op}
			}
			if err := index.Ingest(entry); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	fmt.Printf("published %d experiment records across 28 days\n\n", index.Count())

	show := func(label string, q search.Query) {
		// List rendering wants three columns, so use the projected read
		// path (no payload copy per hit) — the same call the portal makes.
		hits, total, err := index.SearchProjected(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %d record(s)\n", label, total)
		for i, h := range hits {
			if i >= 3 {
				fmt.Printf("  ... and %d more\n", total-3)
				break
			}
			fmt.Printf("  %s %s %s\n", h.ID, h.Date.Format("2006-01-02"), h.Fields["kind"])
		}
		fmt.Println()
	}

	// Which past experiments saw gold?
	show("query: gold experiments (anonymous)", search.Query{Text: "au"})

	// Narrow to one week of spatiotemporal runs.
	show("query: spatiotemporal runs, week of June 12",
		search.Query{
			Filters: map[string]string{"kind": "spatiotemporal"},
			From:    time.Date(2023, 6, 12, 0, 0, 0, 0, time.UTC),
			To:      time.Date(2023, 6, 18, 23, 59, 59, 0, time.UTC),
		})

	// High-voltage runs only.
	show("query: 300 keV runs", search.Query{NumRange: map[string][2]float64{"beam_energy_kev": {299, 301}}})

	// Embargoed records appear only for their owner.
	anonHits, anonTotal, _ := index.Search(search.Query{Filters: map[string]string{"operator": "zaluzec@anl.gov"}, Limit: 100})
	_, ownerTotal, _ := index.Search(search.Query{
		Filters:   map[string]string{"operator": "zaluzec@anl.gov"},
		Principal: "zaluzec@anl.gov",
		Limit:     100,
	})
	fmt.Printf("visibility: %d of zaluzec's records public (%d visible to zaluzec) — %d embargoed\n",
		anonTotal, ownerTotal, ownerTotal-anonTotal)
	_ = anonHits

	// Facets for the portal sidebar.
	fmt.Printf("\nfacets by kind: %v\n", index.Facets(search.Query{}, "kind"))
	fmt.Printf("facets by sample: %v\n", index.Facets(search.Query{}, "sample"))
}
