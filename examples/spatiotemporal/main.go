// Spatiotemporal imaging use case (paper Sec 3.2 / Fig 3): gold
// nanoparticles moving on a carbon background. Follows the paper's
// protocol: every 50th frame is "hand-labeled" (ground truth from the
// synthetic instrument), 9 train / 3 validation frames, flip+crop
// augmentation, detector calibration against mAP50-95, then per-frame
// inference producing an annotated video and particle-count time series.
//
//	go run ./examples/spatiotemporal
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"picoprobe"
	"picoprobe/internal/detect"
	"picoprobe/internal/metadata"
	"picoprobe/internal/synth"
)

func main() {
	work, err := os.MkdirTemp("", "picoprobe-spatiotemporal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// 600 frames like the paper (scaled-down resolution so the example
	// runs in under a minute).
	cfg := picoprobe.SpatiotemporalConfig{
		Frames: 600, Height: 256, Width: 256, Particles: 8, Seed: 7,
		MinRadius: 4, MaxRadius: 8,
	}
	sample := synth.GenerateSpatiotemporal(cfg)
	fmt.Printf("acquisition: %s series, %d nanoparticles\n", sample.Series.Shape(), cfg.Particles)

	// Paper protocol: label every 50th frame; 9 train / 3 val.
	train, val, _, err := detect.Split(sample.Series, sample.Truth, 50, 9, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled frames: %d train, %d validation (every 50th of %d)\n",
		len(train), len(val), cfg.Frames)

	start := time.Now()
	model, err := detect.Calibrate(train, detect.TrainOptions{
		Augment:        true, // horizontal/vertical flips + crops up to 20% zoom
		CropsPerSample: 2,
		CropFraction:   0.2,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	valEval, err := model.EvaluateOn(val)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"fine-tuning\" (augmented grid calibration) took %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  train %v\n  val   %v\n", model.TrainEval, valEval)
	fmt.Printf("  (paper's YOLOv8s: mAP50-95 0.791 train / 0.801 val)\n")

	// Write the EMD and run the fused inference function on it.
	emdPath := filepath.Join(work, "au-series.emdg")
	acq := &metadata.Acquisition{
		SampleName: "au-nanoparticles-on-carbon",
		Operator:   "A. Brace",
		Collected:  time.Now().UTC(),
	}
	if err := sample.WriteEMD(emdPath, synth.DefaultMicroscope(), acq); err != nil {
		log.Fatal(err)
	}
	outDir := filepath.Join(work, "artifacts")
	out, err := picoprobe.AnalyzeSpatiotemporal(emdPath, outDir, model.Params)
	if err != nil {
		log.Fatal(err)
	}

	// Per-frame counts characterize the sample over time (Fig 3 caption).
	minC, maxC, sum := out.Detections[0], out.Detections[0], 0
	for _, c := range out.Detections {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	fmt.Printf("\ninference over %d frames: %.1f particles/frame (min %d, max %d, truth %d)\n",
		len(out.Detections), float64(sum)/float64(len(out.Detections)), minC, maxC, cfg.Particles)
	fmt.Printf("fp64→uint8 cast converted %d elements (the paper's conversion bottleneck)\n", out.CastElements)

	// Link detections into tracks and count them.
	perFrame, err := detect.DetectSeries(sample.Series, model.Params)
	if err != nil {
		log.Fatal(err)
	}
	tracks := detect.Link(perFrame, detect.DefaultTrackerOptions())
	long := 0
	for _, tr := range tracks {
		if len(tr.Boxes) >= cfg.Frames/2 {
			long++
		}
	}
	fmt.Printf("tracking: %d tracks total, %d persisting over half the series\n", len(tracks), long)

	fmt.Println("\nFig 3 artifacts:")
	for _, p := range out.Experiment.Products {
		info, _ := os.Stat(filepath.Join(outDir, p.Path))
		fmt.Printf("  %-26s %-14s %d bytes\n", p.Name, p.Kind, info.Size())
	}
}
