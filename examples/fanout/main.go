// Fanout: the flow shape the paper's straight-line pipeline could not
// express. On the simulated facility, each transfer fans out into the
// full hyperspectral analysis AND a lightweight thumbnail render running
// concurrently on Polaris, and the publication fans both results back in:
//
//	Transfer → {Analysis ∥ Thumbnail} → Publication
//
// The example runs the paper's Table 1 hyperspectral protocol through
// both shapes, shows the overlap in the per-state records of one run,
// and prints the batched completion detector's effort.
//
//	go run ./examples/fanout
package main

import (
	"fmt"
	"log"
	"time"

	"picoprobe"
)

func main() {
	cfg := picoprobe.HyperspectralExperiment()
	cfg.Duration = 20 * time.Minute

	linear, err := picoprobe.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.FanOut = true
	fanout, err := picoprobe.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. One run's executed DAG: the two branches enter together and
	//    their provider-side windows overlap.
	run := fanout.Runs[len(fanout.Runs)/2]
	fmt.Printf("run %s (%s) %s in %v\n", run.RunID, run.Flow, run.Status, run.Runtime().Round(time.Millisecond))
	var analysis, thumb picoprobe.StateRecord
	for _, st := range run.States {
		after := "-"
		if len(st.After) > 0 {
			after = fmt.Sprint(st.After)
		}
		fmt.Printf("  %-12s after=%-24s entered=%s active=%-8v detected=%s polls=%d\n",
			st.Name, after, st.EnteredAt.Format("15:04:05"), st.Active().Round(time.Millisecond),
			st.DetectedAt.Format("15:04:05"), st.Polls)
		switch st.Name {
		case "Analysis":
			analysis = st
		case "Thumbnail":
			thumb = st
		}
	}
	// Overlap of the provider-side active windows:
	// min(completions) - max(starts).
	firstEnd := analysis.Completed
	if thumb.Completed.Before(firstEnd) {
		firstEnd = thumb.Completed
	}
	lastStart := analysis.Started
	if thumb.Started.After(lastStart) {
		lastStart = thumb.Started
	}
	if overlap := firstEnd.Sub(lastStart); overlap > 0 {
		fmt.Printf("\nanalysis and thumbnail overlapped for %v — impossible in the v1 ordered list\n",
			overlap.Round(time.Millisecond))
	}

	// 2. The extra state costs (almost) no wall time: the thumbnail hides
	//    inside the analysis window.
	l, f := linear.Table1(), fanout.Table1()
	fmt.Printf("\n%-28s %10s %10s\n", "", "linear", "fanout")
	fmt.Printf("%-28s %10d %10d\n", "runs", l.TotalRuns, f.TotalRuns)
	fmt.Printf("%-28s %9.1fs %9.1fs\n", "mean flow runtime", l.MeanRuntimeS, f.MeanRuntimeS)
	fmt.Printf("%-28s %9.1fs %9.1fs\n", "median overhead", l.MedianOverheadS, f.MedianOverheadS)
	fmt.Printf("\nfanout runs 4 states per flow in ~the runtime of 3: the fourth is free\n")

	// 3. The batched completion detector's effort: one sweep services
	//    every action due at an instant, across all concurrent runs.
	ps := fanout.PollStats
	fmt.Printf("\ncompletion detection: %d status calls served by %d wake-ups (%.1f polls/wakeup)\n",
		ps.StatusCalls, ps.Wakeups, float64(ps.StatusCalls)/float64(ps.Wakeups))
}
