// Quickstart: generate a synthetic PicoProbe acquisition, run the full
// live data flow on it (transfer → fused analysis → publication), and
// query the resulting record — the whole paper pipeline in one process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"picoprobe"
	"picoprobe/internal/metadata"
	"picoprobe/internal/search"
	"picoprobe/internal/synth"
)

func main() {
	work, err := os.MkdirTemp("", "picoprobe-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	instrument := filepath.Join(work, "instrument")
	os.MkdirAll(instrument, 0o755)

	// 1. The "instrument" writes a hyperspectral EMD file: a polyamide
	//    film with embedded Pb/Au particles imaged as an (H, W, C) cube.
	sample, err := synth.GenerateHyperspectral(picoprobe.HyperspectralConfig{
		Height: 48, Width: 48, Channels: 192, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	acq := &metadata.Acquisition{
		SampleName: "polyamide-film-quickstart",
		Operator:   "quickstart",
		Collected:  time.Now().UTC(),
	}
	if err := sample.WriteEMD(filepath.Join(instrument, "acq-0001.emdg"), synth.DefaultMicroscope(), acq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrument wrote acq-0001.emdg (%s cube, elements %v)\n",
		sample.Cube.Shape(), sample.Elements)

	// 2. Wire the live deployment (transfer + compute + search + flows)
	//    against local directories.
	dep, err := picoprobe.NewLiveDeployment(picoprobe.LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      filepath.Join(work, "eagle"),
		OutDir:         filepath.Join(work, "artifacts"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the three-stage flow and show its timing record.
	rec, err := dep.RunFile("hyperspectral", "acq-0001.emdg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflow %s %s in %v\n", rec.RunID, rec.Status, rec.Runtime().Round(time.Millisecond))
	for _, st := range rec.States {
		fmt.Printf("  %-12s active=%v overhead=%v\n",
			st.Name, st.Active().Round(time.Millisecond), st.Overhead().Round(time.Millisecond))
	}

	// 4. The record is immediately findable, FAIR-style.
	hits, total, err := dep.Index.Search(search.Query{Text: "polyamide lead"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch 'polyamide lead': %d hit(s)\n", total)
	for _, h := range hits {
		fmt.Printf("  %s (%s) collected %s\n",
			h.Entry.ID, h.Entry.Fields["kind"], h.Entry.Date.Format(time.RFC3339))
	}

	// 5. And the Fig 2 artifacts are on disk.
	fmt.Println("\nanalysis products:")
	filepath.Walk(filepath.Join(work, "artifacts"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			fmt.Printf("  %s (%d bytes)\n", filepath.Base(path), info.Size())
		}
		return nil
	})
}
