// Hyperspectral imaging use case (paper Sec 3.1 / Fig 2): analyze a
// polyamide film treated to capture heavy metals from water. The fused
// analysis function produces the intensity map (sum over the spectral
// axis), the aggregate spectrum with element-line assignment (sum over the
// pixel axes), and the HyperSpy-style metadata record.
//
//	go run ./examples/hyperspectral
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"picoprobe"
	"picoprobe/internal/metadata"
	"picoprobe/internal/synth"
)

func main() {
	work, err := os.MkdirTemp("", "picoprobe-hyperspectral")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// A richer phantom: polyamide film with lead-rich capture sites and a
	// few gold reference particles.
	cfg := picoprobe.HyperspectralConfig{
		Height: 96, Width: 96, Channels: 320, Seed: 21,
		Film: map[string]float64{"C": 0.55, "N": 0.2, "O": 0.25},
		Particles: []synth.ParticleSpec{
			{Element: "Pb", Count: 10, MinRadius: 2, MaxRadius: 7, Concentration: 3},
			{Element: "Au", Count: 4, MinRadius: 2, MaxRadius: 5, Concentration: 3},
		},
	}
	sample, err := synth.GenerateHyperspectral(cfg)
	if err != nil {
		log.Fatal(err)
	}
	emdPath := filepath.Join(work, "film.emdg")
	acq := &metadata.Acquisition{
		SampleName: "polyamide-heavy-metal-film",
		Operator:   "N. Zaluzec",
		Collected:  time.Now().UTC(),
	}
	if err := sample.WriteEMD(emdPath, synth.DefaultMicroscope(), acq); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(emdPath)
	fmt.Printf("acquisition: %s cube -> %s (%.1f MB EMD)\n",
		sample.Cube.Shape(), filepath.Base(emdPath), float64(st.Size())/1e6)

	outDir := filepath.Join(work, "artifacts")
	out, err := picoprobe.AnalyzeHyperspectral(emdPath, outDir)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexperiment record %s (%q)\n", out.Experiment.ID, out.Experiment.Title)
	fmt.Printf("microscope: %s at %.0f keV, %s\n",
		out.Experiment.Microscope.InstrumentName,
		out.Experiment.Microscope.BeamEnergyKeV,
		out.Experiment.Microscope.Detector)

	fmt.Println("\nidentified composition (relative spectral weight):")
	var els []string
	for el := range out.Composition {
		els = append(els, el)
	}
	sort.Slice(els, func(i, j int) bool { return out.Composition[els[i]] > out.Composition[els[j]] })
	for _, el := range els {
		fmt.Printf("  %-3s %5.1f%%\n", el, out.Composition[el]*100)
	}
	fmt.Printf("(ground truth elements: %v)\n", sample.Elements)

	fmt.Println("\nFig 2 artifacts:")
	for _, p := range out.Experiment.Products {
		full := filepath.Join(outDir, p.Path)
		info, _ := os.Stat(full)
		fmt.Printf("  %-22s %-14s %d bytes\n", p.Name, p.Kind, info.Size())
	}
}
