package picoprobe

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"picoprobe/internal/metadata"
	"picoprobe/internal/portal"
	"picoprobe/internal/search"
	"picoprobe/internal/synth"
	"picoprobe/internal/watcher"
)

// writeAcquisition drops a small hyperspectral EMD into dir.
func writeAcquisition(t *testing.T, dir, name, sampleName string, seed int64) {
	t.Helper()
	s, err := synth.GenerateHyperspectral(HyperspectralConfig{Height: 16, Width: 16, Channels: 64, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	acq := &metadata.Acquisition{SampleName: sampleName, Operator: "integration", Collected: time.Now().UTC()}
	if err := s.WriteEMD(filepath.Join(dir, name), synth.DefaultMicroscope(), acq); err != nil {
		t.Fatal(err)
	}
}

// TestWatcherDrivenPipeline runs the complete instrument-side loop: the
// watcher detects settled EMD files, each event starts a live flow, and a
// watcher restart with its checkpoint does not re-trigger processed files
// — the paper's resume-after-reboot requirement, end to end.
func TestWatcherDrivenPipeline(t *testing.T) {
	instrument := t.TempDir()
	workdir := t.TempDir()
	checkpoint := filepath.Join(workdir, "watch.json")

	dep, err := NewLiveDeployment(LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      filepath.Join(workdir, "eagle"),
		OutDir:         filepath.Join(workdir, "artifacts"),
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := watcher.Options{
		Interval:       5 * time.Millisecond,
		SettlePolls:    2,
		Pattern:        "*.emdg",
		CheckpointPath: checkpoint,
	}
	w, err := watcher.New(instrument, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()

	writeAcquisition(t, instrument, "a.emdg", "sample-a", 1)
	writeAcquisition(t, instrument, "b.emdg", "sample-b", 2)

	processed := 0
	deadline := time.After(20 * time.Second)
	for processed < 2 {
		select {
		case ev := <-w.Events():
			rel, err := filepath.Rel(instrument, ev.Path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dep.RunFile("hyperspectral", rel); err != nil {
				t.Fatal(err)
			}
			processed++
		case <-deadline:
			t.Fatalf("timed out after %d flows", processed)
		}
	}
	w.Stop()

	if dep.Index.Count() != 2 {
		t.Fatalf("indexed = %d, want 2", dep.Index.Count())
	}

	// "Reboot" the user machine: a fresh watcher must not re-announce the
	// processed files but must pick up a new one.
	w2, err := watcher.New(instrument, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Processed() != 2 {
		t.Fatalf("restored checkpoint has %d entries", w2.Processed())
	}
	w2.Start()
	defer w2.Stop()
	writeAcquisition(t, instrument, "c.emdg", "sample-c", 3)
	select {
	case ev := <-w2.Events():
		if filepath.Base(ev.Path) != "c.emdg" {
			t.Fatalf("re-announced old file %s", ev.Path)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("new file after restart never announced")
	}
}

// TestPortalOverLivePipeline serves the portal over a live deployment's
// index and artifacts and walks it like a researcher would: search, open
// the record, fetch a rendered plot.
func TestPortalOverLivePipeline(t *testing.T) {
	instrument := t.TempDir()
	workdir := t.TempDir()
	outDir := filepath.Join(workdir, "artifacts")
	dep, err := NewLiveDeployment(LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      filepath.Join(workdir, "eagle"),
		OutDir:         outDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeAcquisition(t, instrument, "run.emdg", "portal-sample", 4)
	if _, err := dep.RunFile("hyperspectral", "run.emdg"); err != nil {
		t.Fatal(err)
	}

	srv, err := portal.NewServer(portal.Config{Index: dep.Index, ArtifactRoot: outDir})
	if err != nil {
		t.Fatal(err)
	}

	// Search page finds the record.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/?q=portal-sample", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	if rec.Result().StatusCode != 200 || !strings.Contains(string(body), "exp-") {
		t.Fatalf("search page: %d\n%s", rec.Result().StatusCode, body)
	}

	// Extract the record ID from the index directly and open its page.
	hits, _, err := dep.Index.Search(search.Query{Text: "portal-sample"})
	if err != nil || len(hits) == 0 {
		t.Fatal("record not indexed")
	}
	id := hits[0].Entry.ID
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/record/"+id, nil))
	page, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(page), "intensity.png") {
		t.Errorf("record page missing intensity product:\n%s", page)
	}

	// The intensity map itself is served as a PNG.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/artifacts/"+id+"/intensity.png", nil))
	png, _ := io.ReadAll(rec.Result().Body)
	if rec.Result().StatusCode != 200 || len(png) < 8 || string(png[1:4]) != "PNG" {
		t.Errorf("artifact fetch failed: %d, %d bytes", rec.Result().StatusCode, len(png))
	}
}

// TestIndexSnapshotRoundTripThroughDisk persists a live deployment's index
// and reloads it, the workflow behind cmd/picoprobe-portal -index.
func TestIndexSnapshotRoundTripThroughDisk(t *testing.T) {
	instrument := t.TempDir()
	workdir := t.TempDir()
	dep, err := NewLiveDeployment(LiveOptions{
		InstrumentRoot: instrument,
		EagleRoot:      filepath.Join(workdir, "eagle"),
		OutDir:         filepath.Join(workdir, "artifacts"),
	})
	if err != nil {
		t.Fatal(err)
	}
	writeAcquisition(t, instrument, "run.emdg", "snapshot-sample", 5)
	if _, err := dep.RunFile("hyperspectral", "run.emdg"); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(workdir, "index.jsonl")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Index.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	in, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	loaded, err := search.Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, total, _ := loaded.Search(search.Query{Text: "snapshot-sample"}); total != 1 {
		t.Errorf("reloaded index total = %d", total)
	}
}

// TestBandwidthSweepShape asserts the futuredetectors example's claim: as
// per-stream bandwidth rises, mean runtime falls and the orchestration
// overhead share rises (transfer stops dominating).
func TestBandwidthSweepShape(t *testing.T) {
	cfg := SpatiotemporalExperiment()
	cfg.Duration = 20 * time.Minute
	base, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast := cfg
	fast.Profile.StreamCapBps = 10e9
	fast.Profile.SiteSwitchBps = 10e9
	upgraded, err := RunExperiment(fast)
	if err != nil {
		t.Fatal(err)
	}
	b, u := base.Table1(), upgraded.Table1()
	if u.MeanRuntimeS >= b.MeanRuntimeS {
		t.Errorf("upgrade did not speed flows: %.0f vs %.0f", u.MeanRuntimeS, b.MeanRuntimeS)
	}
	if u.MedianOverheadPct <= b.MedianOverheadPct {
		t.Errorf("overhead share should rise after upgrade: %.1f%% vs %.1f%%",
			u.MedianOverheadPct, b.MedianOverheadPct)
	}
}

// TestBatchedWatcherPipeline runs the reworked acquisition-side ingest
// data plane end to end: a detector burst settles under the watcher, the
// batcher coalesces it into one multi-file batch under a bytes-in-flight
// budget, a single chunked multi-stream transfer task moves every file,
// the analyses run as concurrent DAG states, and one batched publication
// indexes the records.
func TestBatchedWatcherPipeline(t *testing.T) {
	instrument := t.TempDir()
	workdir := t.TempDir()
	dep, err := NewLiveDeployment(LiveOptions{
		InstrumentRoot:     instrument,
		EagleRoot:          filepath.Join(workdir, "eagle"),
		OutDir:             filepath.Join(workdir, "artifacts"),
		TransferChunkBytes: 64 << 10,
		TransferStreams:    4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The burst lands before the watcher starts, so every file settles
	// together and the batcher sees them as one group.
	writeAcquisition(t, instrument, "burst-a.emdg", "burst-sample-a", 11)
	writeAcquisition(t, instrument, "burst-b.emdg", "burst-sample-b", 12)
	writeAcquisition(t, instrument, "burst-c.emdg", "burst-sample-c", 13)

	w, err := watcher.New(instrument, watcher.Options{
		Interval:    5 * time.Millisecond,
		SettlePolls: 2,
		Pattern:     "*.emdg",
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	b := watcher.NewBatcher(w.Events(), watcher.BatchOptions{
		MaxBatchFiles: 8,
		Linger:        100 * time.Millisecond,
		BudgetBytes:   1 << 30,
	})

	processed := 0
	deadline := time.After(60 * time.Second)
	for processed < 3 {
		select {
		case batch := <-b.Batches():
			rels := make([]string, 0, len(batch.Files))
			for _, ev := range batch.Files {
				rel, err := filepath.Rel(instrument, ev.Path)
				if err != nil {
					t.Fatal(err)
				}
				rels = append(rels, rel)
			}
			rec, err := dep.RunBatch("hyperspectral", rels)
			if err != nil {
				t.Fatal(err)
			}
			// One transfer + one publication + one analysis per file.
			if want := len(rels) + 2; len(rec.States) != want {
				t.Fatalf("batch of %d ran %d states, want %d", len(rels), len(rec.States), want)
			}
			processed += len(rels)
			b.Done(batch)
		case <-deadline:
			t.Fatalf("timed out with %d of 3 files processed", processed)
		}
	}
	if st := b.Stats(); st.Batches >= 3 {
		t.Errorf("burst not coalesced: %d batches for 3 files", st.Batches)
	}
	if dep.Index.Count() != 3 {
		t.Errorf("indexed = %d, want 3", dep.Index.Count())
	}
	// The batched transfers moved every file through chunked tasks.
	for _, task := range dep.Transfer.Tasks() {
		if task.Status != "SUCCEEDED" {
			t.Errorf("task %s: %s (%s)", task.ID, task.Status, task.Error)
		}
	}
}
